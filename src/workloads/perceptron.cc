#include "workloads/perceptron.hh"

#include <cmath>

#include "base/logging.hh"

namespace capsule::wl
{
namespace
{

using rt::Task;
using rt::Val;
using rt::Worker;

enum Site : std::uint32_t
{
    siteGroupSplit = 40,
    siteNeuronLoop = 41,
    siteSynapseLoop = 42,
};

struct Run
{
    const std::vector<double> &x;
    const std::vector<double> &wts;
    std::vector<double> &out;
    int inputs;
    Addr xBase;
    Addr wBase;
    Addr outBase;
};

/**
 * Evaluate neurons [lo, hi), probing the architecture as the neuron
 * loop advances and halving the *remaining* group whenever a
 * division is granted (the paper's constantly-splitting Perceptron
 * component). Each worker pays a fixed group-setup cost, so storms
 * of tiny divisions are unprofitable — the Figure-7 throttle case.
 */
Task
perceptronWorker(Worker &w, Run &run, int lo, int hi, int min_group)
{
    // Per-group fixed cost: group descriptor and bias setup.
    co_await w.compute(12);

    int curHi = hi;
    for (int n = lo; n < curHi; ++n) {
        // Conditional division of the remaining neurons in half.
        if (curHi - n > min_group) {
            int mid = n + (curHi - n) / 2;
            int childHi = curHi;
            bool granted = co_await w.probe(
                [&run, mid, childHi, min_group](Worker &cw) -> Task {
                    return perceptronWorker(cw, run, mid, childHi,
                                            min_group);
                },
                siteGroupSplit);
            if (granted)
                curHi = mid;
        }

        double acc = 0.0;
        Val accv = co_await w.fmul();  // zero the accumulator
        for (int i = 0; i < run.inputs; ++i) {
            std::size_t wi = std::size_t(n) * std::size_t(run.inputs) +
                             std::size_t(i);
            acc += run.x[std::size_t(i)] * run.wts[wi];
            Val xv = co_await w.loadf(run.xBase + Addr(i) * 8);
            Val wv = co_await w.loadf(run.wBase + Addr(wi) * 8);
            Val p = co_await w.fmul(xv, wv);
            accv = co_await w.fadd(accv, p);
            co_await w.branch(siteSynapseLoop, i + 1 < run.inputs, p);
        }
        run.out[std::size_t(n)] = acc > 0.0 ? acc : 0.0;  // ReLU-style
        co_await w.storef(run.outBase + Addr(n) * 8, accv);
        co_await w.branch(siteNeuronLoop, n + 1 < curHi, accv);
    }
}

} // namespace

std::vector<double>
perceptronForward(const std::vector<double> &x,
                  const std::vector<double> &wts, int neurons,
                  int inputs)
{
    std::vector<double> out(std::size_t(neurons), 0.0);
    for (int n = 0; n < neurons; ++n) {
        double acc = 0.0;
        for (int i = 0; i < inputs; ++i)
            acc += x[std::size_t(i)] *
                   wts[std::size_t(n) * std::size_t(inputs) +
                       std::size_t(i)];
        out[std::size_t(n)] = acc > 0.0 ? acc : 0.0;
    }
    return out;
}

WorkloadResult
runPerceptron(const sim::MachineConfig &cfg,
              const PerceptronParams &params)
{
    Rng rng(params.seed);
    std::vector<double> x(std::size_t(params.inputs));
    for (auto &v : x)
        v = rng.gaussian(0.0, 1.0);
    std::vector<double> wts(std::size_t(params.neurons) *
                            std::size_t(params.inputs));
    for (auto &v : wts)
        v = rng.gaussian(0.0, 1.0);
    std::vector<double> out(std::size_t(params.neurons), 0.0);

    rt::Exec exec;
    Run run{x,
            wts,
            out,
            params.inputs,
            exec.arena().alloc(std::uint64_t(params.inputs) * 8, 64),
            exec.arena().alloc(wts.size() * 8, 64),
            exec.arena().alloc(out.size() * 8, 64)};

    int n = params.neurons;
    int minGroup = params.minGroup;
    WorkloadResult res;
    res.workload = "perceptron";
    res.stats =
        simulate(cfg, exec, [&run, n, minGroup](Worker &w) -> Task {
            return perceptronWorker(w, run, 0, n, minGroup);
        });
    res.correct =
        out == perceptronForward(x, wts, params.neurons, params.inputs);
    return res;
}

} // namespace capsule::wl
