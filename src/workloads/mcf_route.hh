/**
 * @file
 * The 181.mcf analogue (Section 5): the componentised section replaces
 * a sequential tree traversal for route planning with a parallel tree
 * search. Division is tested at every tree node and the per-node task
 * is elementary, giving the highest division rate of the three SPEC
 * statistics rows (Table 3) — one division every few thousand
 * instructions.
 */

#ifndef CAPSULE_WL_MCF_ROUTE_HH
#define CAPSULE_WL_MCF_ROUTE_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "sim/machine.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

namespace capsule::wl
{

/** A route-planning tree: first-child / next-sibling layout. */
struct RouteTree
{
    struct Node
    {
        std::int64_t cost = 0;
        std::vector<int> children;
    };

    std::vector<Node> nodes;  ///< node 0 is the root

    static RouteTree random(int node_count, int max_children,
                            int max_cost, Rng &rng);
};

/** Golden search: minimum root-to-leaf cost. */
std::int64_t cheapestRoute(const RouteTree &t);

/** Parameters of one mcf-analogue experiment. */
struct McfParams
{
    int nodes = 20000;
    int maxChildren = 3;
    int maxCost = 50;
    std::uint64_t seed = 1;
    /** Serial (non-componentised) section length in instructions;
     *  calibrated so the componentised section is ~45 % of execution
     *  (Table 2). Zero skips the serial phase. */
    std::uint64_t serialSectionOps = 0;
};

/**
 * Simulate the mcf analogue under `cfg`'s division policy.
 * `stats` covers the componentised tree search; `serialCycles` the
 * rest of the program. Metrics: "best" (cheapest route cost found).
 */
WorkloadResult runMcf(const sim::MachineConfig &cfg,
                      const McfParams &params);

} // namespace capsule::wl

#endif // CAPSULE_WL_MCF_ROUTE_HH
