#include "workloads/graph.hh"

#include <queue>

#include "base/logging.hh"

namespace capsule::wl
{

std::size_t
Graph::edges() const
{
    std::size_t n = 0;
    for (const auto &adj : out)
        n += adj.size();
    return n;
}

Graph
Graph::random(int nodes, double avg_degree, int max_weight, Rng &rng)
{
    CAPSULE_ASSERT(nodes > 0, "graph needs nodes");
    Graph g;
    g.out.resize(std::size_t(nodes));

    // Spanning structure: every node i>0 is reachable from a random
    // earlier node, guaranteeing one connected component from node 0.
    for (int i = 1; i < nodes; ++i) {
        int from = int(rng.uniform(0, std::uint64_t(i - 1)));
        g.out[std::size_t(from)].push_back(
            Edge{i, std::int64_t(rng.uniform(1,
                                  std::uint64_t(max_weight)))});
    }
    // Extra edges up to the requested average degree.
    auto target = std::size_t(avg_degree * nodes);
    while (g.edges() < target) {
        int from = int(rng.uniform(0, std::uint64_t(nodes - 1)));
        int to = int(rng.uniform(0, std::uint64_t(nodes - 1)));
        if (from == to)
            continue;
        g.out[std::size_t(from)].push_back(
            Edge{to, std::int64_t(rng.uniform(1,
                                   std::uint64_t(max_weight)))});
    }
    return g;
}

std::vector<std::int64_t>
shortestPaths(const Graph &g, int root)
{
    std::vector<std::int64_t> dist(std::size_t(g.nodes()), unreachable);
    using Item = std::pair<std::int64_t, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[std::size_t(root)] = 0;
    pq.emplace(0, root);
    while (!pq.empty()) {
        auto [d, n] = pq.top();
        pq.pop();
        if (d > dist[std::size_t(n)])
            continue;
        for (const Edge &e : g.out[std::size_t(n)]) {
            std::int64_t nd = d + e.weight;
            if (nd < dist[std::size_t(e.to)]) {
                dist[std::size_t(e.to)] = nd;
                pq.emplace(nd, e.to);
            }
        }
    }
    return dist;
}

GraphLayout::GraphLayout(const Graph &g, mem::Arena &arena)
{
    nodeAddr.reserve(std::size_t(g.nodes()));
    edgeAddr.resize(std::size_t(g.nodes()));
    for (int i = 0; i < g.nodes(); ++i) {
        // Node record: distance + bookkeeping, one 32-byte slot.
        nodeAddr.push_back(arena.alloc(32, 32));
        auto &ev = edgeAddr[std::size_t(i)];
        ev.reserve(g.out[std::size_t(i)].size());
        for (std::size_t e = 0; e < g.out[std::size_t(i)].size(); ++e)
            ev.push_back(arena.alloc(16, 16));
    }
}

} // namespace capsule::wl
