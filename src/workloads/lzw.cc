#include "workloads/lzw.hh"

#include <map>
#include <utility>

#include "base/logging.hh"

namespace capsule::wl
{
namespace
{

using rt::Task;
using rt::Val;
using rt::Worker;

enum Site : std::uint32_t
{
    siteSplit = 30,
    siteMatchLoop = 31,
    siteDictHit = 32,
};

/** Shared state of one componentised compression run. */
struct Run
{
    const std::vector<std::uint8_t> &text;
    int alphabet;
    Addr textBase;
    Addr dictBase;
    /** Per-chunk output streams keyed by start offset. */
    std::map<int, std::vector<int>> chunkCodes;
};

/**
 * LZW-compress text[lo, hi) with a private dictionary, probing the
 * architecture as the compression loop advances ("a component
 * containing a loop would probe hardware resources at each iteration
 * and split the loop in half whenever a resource is available",
 * Section 1). A granted division hands the upper half of the
 * *remaining* sequence to a child worker; a denied probe simply
 * carries on serially and probes again later. Each worker/chunk pays
 * a fixed dictionary-initialisation cost, which is what makes storms
 * of tiny divisions unprofitable and the death-rate throttle
 * worthwhile (Figure 7).
 */
Task
compressRange(Worker &w, Run &run, int lo, int hi, int min_split)
{
    std::map<std::pair<int, int>, int> dict;  // (code, symbol) -> code
    int nextCode = run.alphabet;
    std::vector<int> out;

    // Per-chunk fixed cost: dictionary initialisation and output
    // stream setup.
    co_await w.compute(24);
    co_await w.store(run.dictBase + Addr(lo % 512) * 8);

    int i = lo;
    int curHi = hi;
    int cur = -1;
    int sinceProbe = 0;
    constexpr int probeInterval = 4;

    while (i < curHi) {
        // Conditional division of the remaining sequence in half.
        if (curHi - i > min_split && ++sinceProbe >= probeInterval) {
            sinceProbe = 0;
            int mid = i + (curHi - i) / 2;
            int childHi = curHi;
            bool granted = co_await w.probe(
                [&run, mid, childHi, min_split](Worker &cw) -> Task {
                    return compressRange(cw, run, mid, childHi,
                                         min_split);
                },
                siteSplit);
            if (granted)
                curHi = mid;
        }

        int sym = run.text[std::size_t(i)];
        Val c = co_await w.load(run.textBase + Addr(i));
        if (cur < 0) {
            cur = sym;
            ++i;
            co_await w.branch(siteMatchLoop, i < curHi, c);
            continue;
        }
        auto it = dict.find({cur, sym});
        bool inDict = it != dict.end();
        // Dictionary probe: hash + bucket load + compare.
        Val h = co_await w.alu(c);
        co_await w.load(run.dictBase +
                        Addr((std::uint64_t(cur) * 31 +
                              std::uint64_t(sym)) %
                             4096) * 8);
        co_await w.branch(siteDictHit, inDict, h);
        if (inDict) {
            cur = it->second;
            ++i;
        } else {
            out.push_back(cur);
            co_await w.store(run.dictBase +
                                 Addr(4096 + out.size()) * 8,
                             h);
            dict[{cur, sym}] = nextCode++;
            cur = sym;
            ++i;
        }
        co_await w.branch(siteMatchLoop, i < curHi, c);
    }
    if (cur >= 0)
        out.push_back(cur);
    run.chunkCodes[lo] = std::move(out);
}

} // namespace

std::vector<int>
lzwCompress(const std::vector<std::uint8_t> &in, int alphabet)
{
    std::map<std::pair<int, int>, int> dict;
    int nextCode = alphabet;
    std::vector<int> out;
    int cur = -1;
    for (std::uint8_t ch : in) {
        int sym = ch;
        CAPSULE_ASSERT(sym < alphabet, "symbol outside alphabet");
        if (cur < 0) {
            cur = sym;
            continue;
        }
        auto it = dict.find({cur, sym});
        if (it != dict.end()) {
            cur = it->second;
        } else {
            out.push_back(cur);
            dict[{cur, sym}] = nextCode++;
            cur = sym;
        }
    }
    if (cur >= 0)
        out.push_back(cur);
    return out;
}

std::vector<std::uint8_t>
lzwDecompress(const std::vector<int> &codes, int alphabet)
{
    // Standard LZW decoder reconstructing the dictionary.
    std::vector<std::vector<std::uint8_t>> dict;
    dict.reserve(std::size_t(alphabet) + codes.size());
    for (int s = 0; s < alphabet; ++s)
        dict.push_back({std::uint8_t(s)});

    std::vector<std::uint8_t> out;
    std::vector<std::uint8_t> prev;
    for (int code : codes) {
        std::vector<std::uint8_t> entry;
        if (code < int(dict.size())) {
            entry = dict[std::size_t(code)];
        } else {
            CAPSULE_ASSERT(!prev.empty() && code == int(dict.size()),
                           "corrupt LZW stream");
            entry = prev;
            entry.push_back(prev.front());
        }
        out.insert(out.end(), entry.begin(), entry.end());
        if (!prev.empty()) {
            auto fresh = prev;
            fresh.push_back(entry.front());
            dict.push_back(std::move(fresh));
        }
        prev = std::move(entry);
    }
    return out;
}

std::vector<std::uint8_t>
makeText(int length, int alphabet, Rng &rng)
{
    // Markov-ish source: repeat recent substrings to be compressible.
    std::vector<std::uint8_t> text;
    text.reserve(std::size_t(length));
    while (int(text.size()) < length) {
        if (!text.empty() && rng.bernoulli(0.5)) {
            auto start =
                std::size_t(rng.uniform(0, text.size() - 1));
            auto len = std::size_t(rng.uniform(2, 12));
            for (std::size_t k = 0;
                 k < len && int(text.size()) < length; ++k)
                text.push_back(text[(start + k) % text.size()]);
        } else {
            text.push_back(std::uint8_t(
                rng.uniform(0, std::uint64_t(alphabet - 1))));
        }
    }
    return text;
}

WorkloadResult
runLzw(const sim::MachineConfig &cfg, const LzwParams &params)
{
    Rng rng(params.seed);
    std::vector<std::uint8_t> text =
        makeText(params.length, params.alphabet, rng);

    rt::Exec exec;
    Run run{text, params.alphabet,
            exec.arena().alloc(std::uint64_t(params.length), 64),
            exec.arena().alloc(64 * 1024, 64),
            {}};

    int n = params.length;
    int minSplit = params.minSplit;
    WorkloadResult res;
    res.workload = "lzw";
    res.stats = simulate(cfg, exec,
                         [&run, n, minSplit](Worker &w) -> Task {
                             return compressRange(w, run, 0, n,
                                                  minSplit);
                         });

    // Round trip: decompress every chunk in offset order.
    std::vector<std::uint8_t> recovered;
    std::size_t codeCount = 0;
    for (const auto &[lo, codes] : run.chunkCodes) {
        auto part = lzwDecompress(codes, params.alphabet);
        recovered.insert(recovered.end(), part.begin(), part.end());
        codeCount += codes.size();
    }

    res.correct = recovered == text;
    res.setMetric("chunks", double(run.chunkCodes.size()));
    res.setMetric("codes", double(codeCount));
    return res;
}

} // namespace capsule::wl
