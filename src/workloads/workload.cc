#include "workloads/workload.hh"

#include <stdexcept>

#include "base/logging.hh"
#include "workloads/bzip_sort.hh"
#include "workloads/crafty_search.hh"
#include "workloads/dijkstra.hh"
#include "workloads/lzw.hh"
#include "workloads/mcf_route.hh"
#include "workloads/perceptron.hh"
#include "workloads/quicksort.hh"
#include "workloads/vpr_route.hh"

namespace capsule::wl
{

const char *
scaleLevelName(ScaleLevel level)
{
    switch (level) {
      case ScaleLevel::Quick: return "quick";
      case ScaleLevel::Paper: return "paper";
      default: return "default";
    }
}

void
WorkloadResult::setMetric(const std::string &key, double value)
{
    for (auto &[k, v] : metrics) {
        if (k == key) {
            v = value;
            return;
        }
    }
    metrics.emplace_back(key, value);
}

double
WorkloadResult::metric(const std::string &key, double fallback) const
{
    for (const auto &[k, v] : metrics)
        if (k == key)
            return v;
    return fallback;
}

bool
WorkloadResult::hasMetric(const std::string &key) const
{
    for (const auto &[k, v] : metrics)
        if (k == key)
            return true;
    return false;
}

void
WorkloadRegistry::add(const std::string &name, Factory factory)
{
    CAPSULE_ASSERT(!contains(name),
                   "duplicate workload registration: ", name);
    factories.emplace_back(name, std::move(factory));
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    for (const auto &[k, f] : factories)
        if (k == name)
            return true;
    return false;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories.size());
    for (const auto &[k, f] : factories)
        out.push_back(k);
    return out;
}

WorkloadResult
WorkloadRegistry::run(const std::string &name,
                      const sim::MachineConfig &cfg,
                      const WorkloadRequest &req) const
{
    for (const auto &[k, f] : factories)
        if (k == name)
            return f(cfg, req);
    throw std::out_of_range("unknown workload: " + name);
}

namespace
{

/**
 * Builtin factories, sized exactly as the figure/table harnesses
 * size each workload at --quick / default / --paper scale.
 */
WorkloadRegistry
makeBuiltinRegistry()
{
    using Cfg = sim::MachineConfig;
    WorkloadRegistry reg;

    reg.add("dijkstra", [](const Cfg &cfg, const WorkloadRequest &r) {
        DijkstraParams p;
        p.nodes = pickByScale(r.scale, 150, 400, 1000);
        p.seed = r.seed;
        return runDijkstra(cfg, p);
    });
    reg.add("dijkstra-normal",
            [](const Cfg &cfg, const WorkloadRequest &r) {
                DijkstraParams p;
                p.nodes = pickByScale(r.scale, 150, 400, 1000);
                p.seed = r.seed;
                return runDijkstraNormal(cfg, p);
            });
    reg.add("quicksort", [](const Cfg &cfg, const WorkloadRequest &r) {
        QuickSortParams p;
        p.length = pickByScale(r.scale, 1024, 4096, 16384);
        p.seed = r.seed;
        return runQuickSort(cfg, p);
    });
    reg.add("lzw", [](const Cfg &cfg, const WorkloadRequest &r) {
        LzwParams p;
        p.length = pickByScale(r.scale, 1024, 4096, 4096);
        p.seed = r.seed;
        return runLzw(cfg, p);
    });
    reg.add("perceptron",
            [](const Cfg &cfg, const WorkloadRequest &r) {
                PerceptronParams p;
                p.neurons = pickByScale(r.scale, 1000, 4000, 10000);
                p.seed = r.seed;
                return runPerceptron(cfg, p);
            });
    reg.add("mcf", [](const Cfg &cfg, const WorkloadRequest &r) {
        McfParams p;
        p.nodes = pickByScale(r.scale, 4000, 20000, 60000);
        p.seed = r.seed;
        return runMcf(cfg, p);
    });
    reg.add("vpr", [](const Cfg &cfg, const WorkloadRequest &r) {
        VprParams p;
        p.grid = pickByScale(r.scale, 32, 32, 64);
        p.nets = pickByScale(r.scale, 12, 16, 48);
        p.seed = r.seed;
        return runVpr(cfg, p);
    });
    reg.add("bzip2", [](const Cfg &cfg, const WorkloadRequest &r) {
        BzipParams p;
        p.blockBytes = pickByScale(r.scale, 512, 1200, 4096);
        p.seed = r.seed;
        return runBzip(cfg, p);
    });
    reg.add("crafty", [](const Cfg &cfg, const WorkloadRequest &r) {
        CraftyParams p;
        p.branching = pickByScale(r.scale, 3, 4, 4);
        p.depth = pickByScale(r.scale, 5, 6, 7);
        p.poolThreads = 7;
        p.seed = r.seed;
        return runCrafty(cfg, p);
    });

    return reg;
}

} // namespace

const WorkloadRegistry &
WorkloadRegistry::builtin()
{
    static const WorkloadRegistry reg = makeBuiltinRegistry();
    return reg;
}

} // namespace capsule::wl
