/**
 * @file
 * The 256.bzip2 analogue (Section 5): the componentised section
 * targets the string-sorting process of the block-sorting (BWT)
 * compressor. Suffix indices of a text block are sorted with a
 * componentised quicksort whose comparisons walk the strings
 * character by character — heavy per-comparison work, so divisions
 * are rare relative to instructions (Table 3's large
 * instructions-per-division for bzip2).
 */

#ifndef CAPSULE_WL_BZIP_SORT_HH
#define CAPSULE_WL_BZIP_SORT_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "sim/machine.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

namespace capsule::wl
{

/** Parameters of one bzip2-analogue experiment. */
struct BzipParams
{
    int blockBytes = 2048;     ///< text block length
    int maxCompare = 24;       ///< compared prefix length bound
    int serialCutoff = 12;     ///< insertion sort below this size
    std::uint64_t seed = 1;
    /** Serial section ops; Table 2 puts bzip2's componentised
     *  section at ~20% of execution. */
    std::uint64_t serialSectionOps = 0;
};

/**
 * Golden suffix order: prefix-bounded lexicographic comparison with
 * index tie-break (a strict total order, so any correct sort agrees).
 */
std::vector<int> suffixOrder(const std::vector<std::uint8_t> &block,
                             int max_compare);

/** Simulate the bzip2 analogue under `cfg`'s division policy. */
WorkloadResult runBzip(const sim::MachineConfig &cfg,
                       const BzipParams &params);

} // namespace capsule::wl

#endif // CAPSULE_WL_BZIP_SORT_HH
