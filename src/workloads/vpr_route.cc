#include "workloads/vpr_route.hh"

#include <algorithm>
#include <cstdlib>

#include "base/logging.hh"

namespace capsule::wl
{
namespace
{

using rt::Task;
using rt::Val;
using rt::Worker;

enum Site : std::uint32_t
{
    siteNetSplit = 60,
    siteStepLoop = 61,
    siteNeighborPick = 62,
    siteIterLoop = 63,
    siteRipup = 64,
};

struct Net
{
    int srcX, srcY, dstX, dstY;
    std::vector<int> path;  ///< node indices of the current route
};

struct Run
{
    int grid;
    int capacity;
    std::vector<std::int64_t> baseCost;
    std::vector<std::int64_t> occupancy;
    std::vector<std::int64_t> history;
    std::vector<Net> nets;
    Addr baseCostAddr;
    Addr occAddr;
    Addr histAddr;
    JoinCounter *joins = nullptr;
    /** Present-congestion factor, grown each iteration (Pathfinder's
     *  negotiation schedule); needed for convergence of both the
     *  sequential and the concurrent router. */
    std::int64_t presFactor = 10;

    int idx(int x, int y) const { return y * grid + x; }
    Addr baseAt(int i) const { return baseCostAddr + Addr(i) * 8; }
    Addr occAt(int i) const { return occAddr + Addr(i) * 8; }
    Addr histAt(int i) const { return histAddr + Addr(i) * 8; }

    std::int64_t
    nodeCost(int i) const
    {
        std::int64_t over =
            std::max<std::int64_t>(0,
                                   occupancy[std::size_t(i)] + 1 -
                                       capacity);
        return baseCost[std::size_t(i)] + presFactor * over +
               history[std::size_t(i)];
    }
};

Task routeRange(Worker &w, Run &run, int lo, int hi);

/**
 * Route one net with a greedy congestion-aware walk from source to
 * sink, claiming occupancy along the way (lock per grid node). The
 * walk probes the architecture every few expansion steps, offering
 * the upper half of the not-yet-routed nets [next, *cur_hi) to a
 * child worker — the constant probing that makes the router explore
 * many circuit-graph paths simultaneously.
 */
Task
routeNet(Worker &w, Run &run, int net_id, int next_net, int *cur_hi)
{
    Net &net = run.nets[std::size_t(net_id)];
    net.path.clear();
    int x = net.srcX;
    int y = net.srcY;
    int steps = 0;

    while (x != net.dstX || y != net.dstY) {
        // Conditional division of the remaining nets.
        if (cur_hi && ++steps % 4 == 0 &&
            *cur_hi - next_net > 1) {
            int mid = next_net + (*cur_hi - next_net) / 2;
            int childHi = *cur_hi;
            bool granted = co_await w.probe(
                [&run, mid, childHi](Worker &cw) -> Task {
                    return routeRange(cw, run, mid, childHi);
                },
                siteNetSplit);
            if (granted)
                *cur_hi = mid;
        }
        // Candidate steps toward the sink in x and in y.
        int cx = x + (net.dstX > x ? 1 : net.dstX < x ? -1 : 0);
        int cy = y + (net.dstY > y ? 1 : net.dstY < y ? -1 : 0);
        bool haveX = cx != x;
        bool haveY = cy != y;

        int candA = haveX ? run.idx(cx, y) : run.idx(x, cy);
        int candB = haveY ? run.idx(x, cy) : candA;

        // Read both candidates' cost components (the memory-bound
        // inner loop: three big-array loads per candidate).
        Val a1 = co_await w.load(run.baseAt(candA));
        Val a2 = co_await w.load(run.occAt(candA));
        Val a3 = co_await w.load(run.histAt(candA));
        Val ac = co_await w.alu(a1, a2);
        ac = co_await w.alu(ac, a3);

        Val b1 = co_await w.load(run.baseAt(candB));
        Val b2 = co_await w.load(run.occAt(candB));
        Val b3 = co_await w.load(run.histAt(candB));
        Val bc = co_await w.alu(b1, b2);
        bc = co_await w.alu(bc, b3);

        bool pickA = !haveY ||
                     (haveX &&
                      run.nodeCost(candA) <= run.nodeCost(candB));
        co_await w.branch(siteNeighborPick, pickA, ac);
        int chosen = pickA ? candA : candB;
        if (pickA) {
            if (haveX)
                x = cx;
            else
                y = cy;
        } else {
            y = cy;
        }

        // Claim the routing resource (data-centric synchronisation).
        co_await w.lock(run.occAt(chosen));
        Val occ = co_await w.load(run.occAt(chosen));
        run.occupancy[std::size_t(chosen)] += 1;
        Val inc = co_await w.alu(occ);
        co_await w.store(run.occAt(chosen), inc);
        co_await w.unlock(run.occAt(chosen));
        net.path.push_back(chosen);

        co_await w.branch(siteStepLoop, x != net.dstX || y != net.dstY,
                          bc);
    }
    co_await run.joins->done(w);
}

/**
 * Route the nets in [lo, hi): the worker walks the net list, probing
 * from inside the expansion loop (see routeNet); granted divisions
 * hand the upper half of the remaining nets to child workers.
 */
Task
routeRange(Worker &w, Run &run, int lo, int hi)
{
    int curHi = hi;
    for (int n = lo; n < curHi; ++n)
        co_await routeNet(w, run, n, n + 1, &curHi);
}

/** Rip up every net's path and update history costs (serial phase). */
Task
ripupAndUpdate(Worker &w, Run &run, std::uint64_t &overused)
{
    overused = 0;
    for (std::size_t i = 0; i < run.occupancy.size(); ++i) {
        if (run.occupancy[i] > run.capacity) {
            ++overused;
            run.history[i] += run.occupancy[i] - run.capacity;
            Val h = co_await w.load(run.histAt(int(i)));
            co_await w.store(run.histAt(int(i)), h);
        }
    }
    // Rip-up: release all claimed resources.
    for (auto &net : run.nets) {
        for (int node : net.path) {
            run.occupancy[std::size_t(node)] -= 1;
            Val o = co_await w.load(run.occAt(node));
            co_await w.store(run.occAt(node), o);
        }
    }
    co_await w.branch(siteRipup, overused != 0, Val{});
}

/** The full negotiated-congestion routing loop. */
Task
vprMain(Worker &w, Run &run, int max_iters, int *iters_out,
        std::uint64_t *overused_out)
{
    int netCount = int(run.nets.size());
    std::uint64_t overused = 0;
    int iter = 0;
    for (; iter < max_iters; ++iter) {
        run.presFactor = 10 + 6 * iter;  // negotiation schedule
        run.joins->reset(netCount);
        co_await routeRange(w, run, 0, netCount);
        co_await run.joins->wait(w);
        co_await ripupAndUpdate(w, run, overused);
        co_await w.branch(siteIterLoop, overused != 0, Val{});
        if (overused == 0) {
            ++iter;
            break;
        }
    }
    *iters_out = iter;
    *overused_out = overused;
}

} // namespace

WorkloadResult
runVpr(const sim::MachineConfig &cfg, const VprParams &params)
{
    Rng rng(params.seed);
    rt::Exec exec;

    Run run;
    run.grid = params.grid;
    run.capacity = params.capacity;
    auto cells = std::size_t(params.grid) * std::size_t(params.grid);
    run.baseCost.resize(cells);
    for (auto &c : run.baseCost)
        c = std::int64_t(rng.uniform(1, 8));
    run.occupancy.assign(cells, 0);
    run.history.assign(cells, 0);
    run.baseCostAddr = exec.arena().alloc(cells * 8, 64);
    run.occAddr = exec.arena().alloc(cells * 8, 64);
    run.histAddr = exec.arena().alloc(cells * 8, 64);
    JoinCounter joins(exec);
    run.joins = &joins;

    // Nets with sources/sinks biased into a congested centre band so
    // negotiation is actually needed.
    for (int n = 0; n < params.nets; ++n) {
        Net net;
        int mid = params.grid / 2;
        int band = std::max(2, params.grid / 8);
        net.srcX = int(rng.uniform(0, std::uint64_t(params.grid - 1)));
        net.srcY = mid - band + int(rng.uniform(0,
                                     std::uint64_t(2 * band)));
        net.dstX = int(rng.uniform(0, std::uint64_t(params.grid - 1)));
        net.dstY = mid - band + int(rng.uniform(0,
                                     std::uint64_t(2 * band)));
        net.srcY = std::clamp(net.srcY, 0, params.grid - 1);
        net.dstY = std::clamp(net.dstY, 0, params.grid - 1);
        if (net.srcX == net.dstX && net.srcY == net.dstY)
            net.dstX = (net.dstX + 1) % params.grid;
        run.nets.push_back(net);
    }

    int iterations = 0;
    std::uint64_t overused = 0;
    int maxIters = params.maxIterations;
    WorkloadResult res;
    res.workload = "vpr";
    res.stats = simulate(
        cfg, exec,
        [&run, maxIters, &iterations, &overused](Worker &w) -> Task {
            return vprMain(w, run, maxIters, &iterations, &overused);
        });
    res.setMetric("iterations", double(iterations));
    res.setMetric("overused_final", double(overused));
    res.correct = overused == 0;  // converged

    if (params.serialSectionOps > 0) {
        rt::Exec serialExec;
        auto serial = simulate(
            cfg, serialExec,
            serialSection(serialExec, params.serialSectionOps));
        res.serialCycles = serial.cycles;
    }
    return res;
}

} // namespace capsule::wl
