/**
 * @file
 * The 186.crafty analogue (Section 5): a game-tree search derived
 * from an existing parallel implementation that maintains a software
 * pool of pthreads in active wait. The pool manages hardware contexts
 * in software, which (1) shows component programming is compatible
 * with existing parallel code, and (2) mostly inhibits dynamic
 * division — so static pool management underperforms SOMT's dynamic
 * management, and adding pool threads can *degrade* performance
 * (the paper's 4-context 2.3x vs 8-context 1.7x observation).
 */

#ifndef CAPSULE_WL_CRAFTY_SEARCH_HH
#define CAPSULE_WL_CRAFTY_SEARCH_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "sim/machine.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

namespace capsule::wl
{

/** A minimax game tree. */
struct GameTree
{
    struct Node
    {
        std::int64_t score = 0;   ///< static evaluation (leaves)
        std::vector<int> children;
    };

    std::vector<Node> nodes;  ///< node 0 is the root (maximising)

    static GameTree random(int branching, int depth, int max_score,
                           Rng &rng);
};

/** Golden minimax value of the root. */
std::int64_t minimaxValue(const GameTree &t);

/** Parameters of one crafty-analogue experiment. */
struct CraftyParams
{
    int branching = 4;
    int depth = 6;
    int maxScore = 1000;
    /** Pool threads to create (besides the ancestor). */
    int poolThreads = 7;
    std::uint64_t seed = 1;
};

/**
 * Simulate the pthread-pool search under `cfg`.
 * Metrics: "value" (minimax root value) and "spin_iterations"
 * (active-wait loop trips of the pool threads).
 */
WorkloadResult runCrafty(const sim::MachineConfig &cfg,
                         const CraftyParams &params);

} // namespace capsule::wl

#endif // CAPSULE_WL_CRAFTY_SEARCH_HH
