/**
 * @file
 * Componentised Perceptron (Section 5, Figure 7): a single-layer
 * perceptron forward pass whose component version constantly attempts
 * to split its group of neurons into two child components with half
 * the neurons each. Per-neuron work is a short dot product, so the
 * workload has frequent split opportunities with little processing —
 * the second division-throttling witness.
 */

#ifndef CAPSULE_WL_PERCEPTRON_HH
#define CAPSULE_WL_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "sim/machine.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

namespace capsule::wl
{

/** Parameters of one Perceptron experiment. */
struct PerceptronParams
{
    int neurons = 10000;   ///< paper: 10000
    int inputs = 8;        ///< synapses per neuron
    int minGroup = 16;     ///< stop splitting below this group size
    std::uint64_t seed = 1;
};

/** Golden forward pass. */
std::vector<double> perceptronForward(const std::vector<double> &x,
                                      const std::vector<double> &wts,
                                      int neurons, int inputs);

/** Simulate the componentised forward pass under `cfg`. */
WorkloadResult runPerceptron(const sim::MachineConfig &cfg,
                             const PerceptronParams &params);

} // namespace capsule::wl

#endif // CAPSULE_WL_PERCEPTRON_HH
