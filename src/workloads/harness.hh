/**
 * @file
 * Shared helpers for running componentised workloads on a Machine:
 * one-call simulation of a worker body, the synthetic serial sections
 * used by the re-engineered SPEC analogues (Section 4), and speedup
 * arithmetic for the evaluation harnesses.
 */

#ifndef CAPSULE_WL_HARNESS_HH
#define CAPSULE_WL_HARNESS_HH

#include <cstdint>
#include <functional>

#include "core/exec.hh"
#include "core/kernel_program.hh"
#include "core/task.hh"
#include "sim/backend.hh"
#include "sim/machine.hh"

namespace capsule::wl
{

/**
 * Run `body` as the ancestor worker on the backend `cfg.backend`
 * selects (see sim/backend.hh; "smt" is the single-core SOMT, "cmp"
 * the multi-core machine) and return the run statistics. Every
 * registry workload funnels through this seam, so any workload can
 * target any backend by name.
 * @param observer optional division-genealogy callback
 */
sim::RunStats simulate(const sim::MachineConfig &cfg, rt::Exec &exec,
                       rt::WorkerFn body,
                       sim::Machine::DivisionObserver observer =
                           nullptr);

/**
 * A non-componentised (serial) section: a loop streaming over
 * `footprintBytes` of data performing `ops` total instructions with a
 * realistic mix (loads, dependent ALU work, a backedge branch). Used
 * to reproduce the paper's Table-2 "% of total execution time spent
 * in componentised sections" for the SPEC analogues.
 */
rt::WorkerFn serialSection(rt::Exec &exec, std::uint64_t ops,
                           std::uint64_t footprint_bytes = 256 * 1024);

/** speedup = baseline_cycles / improved_cycles. */
inline double
speedup(Cycle baseline, Cycle improved)
{
    return improved ? double(baseline) / double(improved) : 0.0;
}

/**
 * A software join for phase-structured component programs: workers
 * decrement a lock-protected counter when their piece completes and
 * the phase owner spins (active wait, as component programs do) until
 * it reaches zero. This is the "merge with co-workers" pattern of
 * Section 3.2 expressed with the mlock/munlock primitives.
 */
class JoinCounter
{
  public:
    explicit JoinCounter(rt::Exec &exec)
        : addr(exec.arena().alloc(8, 8))
    {}

    /** Arm the counter before spawning a phase. */
    void reset(std::int64_t n) { count = n; }

    std::int64_t value() const { return count; }

    /** Worker-side completion: decrement under the hardware lock. */
    rt::Task done(rt::Worker &w);

    /** Owner-side barrier: spin until the counter reaches zero. */
    rt::Task wait(rt::Worker &w);

  private:
    Addr addr;
    std::int64_t count = 0;
};

} // namespace capsule::wl

#endif // CAPSULE_WL_HARNESS_HH
