/**
 * @file
 * The 175.vpr analogue (Section 5): Pathfinder-style FPGA routing and
 * placement exploring many circuit-graph paths concurrently. Nets are
 * routed over a grid with negotiated congestion (base + occupancy +
 * history costs); iterations rip up and reroute until no routing
 * resource is over-used. The componentised version divides the net
 * range, so concurrent workers observe congestion in a different
 * order than the sequential router and may need an extra iteration to
 * converge (the paper's 9-versus-8 iterations effect). The big cost
 * arrays make the workload memory-bandwidth bound, which the cache
 * size/port sweep (bench_vpr_cache) exploits.
 */

#ifndef CAPSULE_WL_VPR_ROUTE_HH
#define CAPSULE_WL_VPR_ROUTE_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "sim/machine.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

namespace capsule::wl
{

/** Parameters of one vpr-analogue experiment. */
struct VprParams
{
    int grid = 32;            ///< grid side (grid*grid nodes)
    int nets = 16;            ///< nets to route
    int capacity = 2;         ///< per-node routing capacity
    int maxIterations = 40;
    std::uint64_t seed = 1;
    /** Serial section (placement bookkeeping etc.); Table 2 puts
     *  ~93% of vpr inside componentised sections. */
    std::uint64_t serialSectionOps = 0;
};

/**
 * Simulate the vpr analogue under `cfg`'s division policy.
 * `correct` means the router converged (no over-used resource).
 * Metrics: "iterations" (rip-up/reroute rounds) and
 * "overused_final" (over-used nodes at exit).
 */
WorkloadResult runVpr(const sim::MachineConfig &cfg,
                      const VprParams &params);

} // namespace capsule::wl

#endif // CAPSULE_WL_VPR_ROUTE_HH
