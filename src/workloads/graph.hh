/**
 * @file
 * Directed weighted graphs for the Dijkstra workload (and the graph
 * shaped SPEC analogues): generation, simulated-address layout, and a
 * golden shortest-path reference.
 */

#ifndef CAPSULE_WL_GRAPH_HH
#define CAPSULE_WL_GRAPH_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "mem/arena.hh"

namespace capsule::wl
{

/** Distance value for unreached nodes. */
inline constexpr std::int64_t unreachable =
    std::numeric_limits<std::int64_t>::max() / 4;

/** One directed edge. */
struct Edge
{
    int to = 0;
    std::int64_t weight = 1;
};

/** Directed weighted graph in adjacency-list form. */
struct Graph
{
    std::vector<std::vector<Edge>> out;

    int nodes() const { return int(out.size()); }
    std::size_t edges() const;

    /**
     * Random connected-ish graph: a random spanning structure from
     * node 0 plus extra random edges up to the average out-degree.
     */
    static Graph random(int nodes, double avg_degree, int max_weight,
                        Rng &rng);
};

/** Golden Dijkstra from `root`; returns the distance vector. */
std::vector<std::int64_t> shortestPaths(const Graph &g, int root);

/**
 * Simulated-address layout for a graph: one record per node (the lock
 * base and the distance word) plus one record per edge, so cache
 * behaviour tracks the real footprint.
 */
class GraphLayout
{
  public:
    GraphLayout(const Graph &g, mem::Arena &arena);

    Addr node(int i) const { return nodeAddr[std::size_t(i)]; }
    Addr edge(int i, std::size_t e) const
    {
        return edgeAddr[std::size_t(i)][e];
    }

  private:
    std::vector<Addr> nodeAddr;
    std::vector<std::vector<Addr>> edgeAddr;
};

} // namespace capsule::wl

#endif // CAPSULE_WL_GRAPH_HH
