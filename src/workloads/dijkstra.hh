/**
 * @file
 * The componentised Dijkstra of Section 2: workers walk the graph
 * carrying the traversed path length; at each node a worker locks the
 * node, compares its path with the recorded shortest path, either
 * updates it or dies (sub-optimal path), and explores child nodes
 * concurrently by dividing itself (one probe per extra child).
 */

#ifndef CAPSULE_WL_DIJKSTRA_HH
#define CAPSULE_WL_DIJKSTRA_HH

#include <cstdint>
#include <vector>

#include "sim/machine.hh"
#include "workloads/graph.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

namespace capsule::wl
{

/** Parameters of one Dijkstra experiment. */
struct DijkstraParams
{
    int nodes = 1000;
    double avgDegree = 3.0;
    int maxWeight = 100;
    std::uint64_t seed = 1;
    int root = 0;
};

/** Dijkstra result: the common shape plus the distance vector. */
struct DijkstraResult : WorkloadResult
{
    std::vector<std::int64_t> dist;   ///< computed distances
};

/**
 * Simulate the component Dijkstra on the machine described by `cfg`
 * (the division policy inside `cfg` selects SOMT / static / serial
 * execution as in the paper's three-way comparison).
 */
DijkstraResult runDijkstra(const sim::MachineConfig &cfg,
                           const DijkstraParams &params,
                           sim::Machine::DivisionObserver obs = nullptr);

/**
 * Simulate the *normal* (imperative) Dijkstra — the standard
 * central-list algorithm with a binary heap — which is the paper's
 * superscalar baseline in Figure 3. The central list is exactly the
 * artifact of imperative programming Section 2 calls out as
 * hindering parallelisation.
 */
DijkstraResult runDijkstraNormal(const sim::MachineConfig &cfg,
                                 const DijkstraParams &params);

} // namespace capsule::wl

#endif // CAPSULE_WL_DIJKSTRA_HH
