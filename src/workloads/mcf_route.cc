#include "workloads/mcf_route.hh"

#include <algorithm>

#include "base/logging.hh"
#include "workloads/graph.hh"

namespace capsule::wl
{
namespace
{

using rt::Task;
using rt::Val;
using rt::Worker;

enum Site : std::uint32_t
{
    siteLeafCheck = 50,
    siteChildLoop = 51,
    siteProbe = 52,
    siteBestCheck = 53,
};

struct Run
{
    const RouteTree &tree;
    Addr nodeBase;    ///< 32-byte records per node
    Addr bestAddr;    ///< global best (lock-protected)
    std::int64_t best = unreachable;

    Addr node(int i) const { return nodeBase + Addr(i) * 32; }
};

/** Per-node work shared by both versions; true when `node` a leaf. */
Task
nodeStep(Worker &w, Run &run, int node, std::int64_t cost,
         bool *is_leaf)
{
    const RouteTree::Node &n = run.tree.nodes[std::size_t(node)];
    // Per-node task: read the node record fields (cost, capacity,
    // flow bookkeeping of the route tree) and recompute the route
    // cost — elementary relative to mcf's section, but tens of
    // instructions as in the original basis-tree code.
    Val c = co_await w.load(run.node(node));
    Val f = co_await w.load(run.node(node) + 8);
    Val g = co_await w.load(run.node(node) + 16);
    Val s = co_await w.alu(c, f);
    s = co_await w.alu(s, g);
    co_await w.chain(s, 6);
    co_await w.compute(24);
    bool leaf = n.children.empty();
    co_await w.branch(siteLeafCheck, leaf, c);
    if (leaf) {
        // Merge into the global best route (the reduction merge on
        // worker death described in Section 3.2).
        co_await w.lock(run.bestAddr);
        Val b = co_await w.load(run.bestAddr);
        bool better = cost < run.best;
        co_await w.branch(siteBestCheck, better, b);
        if (better) {
            run.best = cost;
            co_await w.store(run.bestAddr, b);
        }
        co_await w.unlock(run.bestAddr);
    }
    *is_leaf = leaf;
}

/** Search the subtree rooted at `node` with accumulated cost `acc`. */
Task
search(Worker &w, Run &run, int node, std::int64_t acc)
{
    const RouteTree::Node &n = run.tree.nodes[std::size_t(node)];
    std::int64_t cost = acc + n.cost;
    bool leaf = false;
    co_await nodeStep(w, run, node, cost, &leaf);
    if (leaf)
        co_return;

    for (std::size_t i = 0; i < n.children.size(); ++i) {
        bool more = i + 1 < n.children.size();
        int child = n.children[i];
        co_await w.branch(siteChildLoop, more, Val{});
        if (more) {
            // Division tested at every node, as the paper chose for
            // 181.mcf; a denied probe means the worker explores the
            // subtree itself, probing again at every node.
            bool granted = co_await w.probe(
                [&run, child, cost](Worker &cw) -> Task {
                    return search(cw, run, child, cost);
                },
                siteProbe);
            if (granted)
                continue;
        }
        co_await search(w, run, child, cost);
    }
}

} // namespace

RouteTree
RouteTree::random(int node_count, int max_children, int max_cost,
                  Rng &rng)
{
    CAPSULE_ASSERT(node_count > 0, "tree needs nodes");
    RouteTree t;
    t.nodes.resize(std::size_t(node_count));
    for (auto &n : t.nodes)
        n.cost = std::int64_t(rng.uniform(1, std::uint64_t(max_cost)));
    // Attach each node to a random earlier node with spare capacity.
    for (int i = 1; i < node_count; ++i) {
        for (;;) {
            int parent = int(rng.uniform(0, std::uint64_t(i - 1)));
            auto &kids = t.nodes[std::size_t(parent)].children;
            if (int(kids.size()) < max_children) {
                kids.push_back(i);
                break;
            }
        }
    }
    return t;
}

std::int64_t
cheapestRoute(const RouteTree &t)
{
    // Iterative DFS to avoid recursion limits on deep trees.
    std::vector<std::pair<int, std::int64_t>> stack{{0, 0}};
    std::int64_t best = unreachable;
    while (!stack.empty()) {
        auto [node, acc] = stack.back();
        stack.pop_back();
        const auto &n = t.nodes[std::size_t(node)];
        std::int64_t cost = acc + n.cost;
        if (n.children.empty()) {
            best = std::min(best, cost);
            continue;
        }
        for (int c : n.children)
            stack.emplace_back(c, cost);
    }
    return best;
}

WorkloadResult
runMcf(const sim::MachineConfig &cfg, const McfParams &params)
{
    Rng rng(params.seed);
    RouteTree tree = RouteTree::random(params.nodes, params.maxChildren,
                                       params.maxCost, rng);

    rt::Exec exec;
    Run run{tree,
            exec.arena().alloc(std::uint64_t(params.nodes) * 32, 64),
            exec.arena().alloc(32, 32), unreachable};

    WorkloadResult res;
    res.workload = "mcf";
    res.stats = simulate(cfg, exec, [&run](Worker &w) -> Task {
        return search(w, run, 0, 0);
    });
    res.setMetric("best", double(run.best));
    res.correct = run.best == cheapestRoute(tree);

    if (params.serialSectionOps > 0) {
        rt::Exec serialExec;
        auto serial = simulate(
            cfg, serialExec,
            serialSection(serialExec, params.serialSectionOps));
        res.serialCycles = serial.cycles;
    }
    return res;
}

} // namespace capsule::wl
