#include "workloads/harness.hh"

#include "base/logging.hh"

namespace capsule::wl
{
namespace
{

/** Serial-section worker: stream, compute, branch; never divides. */
rt::Task
serialBody(rt::Worker &w, Addr base, std::uint64_t ops,
           std::uint64_t footprint)
{
    // Per iteration: 2 loads + 4 dependent ALU + 1 store + 1 branch.
    constexpr std::uint64_t opsPerIter = 8;
    std::uint64_t iters = ops / opsPerIter + 1;
    Addr cursor = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
        rt::Val a = co_await w.load(base + cursor);
        rt::Val b = co_await w.load(base + (cursor + 64) % footprint);
        rt::Val c = co_await w.alu(a, b);
        rt::Val d = co_await w.chain(c, 3);
        co_await w.store(base + cursor, d);
        co_await w.branch(1, i + 1 < iters, d);
        cursor = (cursor + 24) % footprint;
    }
}

} // namespace

sim::RunStats
simulate(const sim::MachineConfig &cfg, rt::Exec &exec,
         rt::WorkerFn body, sim::Machine::DivisionObserver observer)
{
    auto machine = sim::makeBackend(cfg);
    if (observer)
        machine->setDivisionObserver(std::move(observer));
    machine->addThread(rt::makeAncestor(exec, std::move(body)));
    return machine->run();
}

rt::Task
JoinCounter::done(rt::Worker &w)
{
    co_await w.lock(addr);
    rt::Val v = co_await w.load(addr);
    CAPSULE_ASSERT(count > 0, "join counter underflow");
    --count;
    rt::Val d = co_await w.alu(v);
    co_await w.store(addr, d);
    co_await w.unlock(addr);
}

rt::Task
JoinCounter::wait(rt::Worker &w)
{
    // Site 2 is reserved for the join spin loop across workloads.
    while (count != 0) {
        rt::Val v = co_await w.load(addr);
        co_await w.branch(2, count != 0, v);
        if (count == 0)
            break;
        co_await w.compute(4);
    }
    co_await w.branch(2, false, rt::Val{});
}

rt::WorkerFn
serialSection(rt::Exec &exec, std::uint64_t ops,
              std::uint64_t footprint_bytes)
{
    Addr base = exec.arena().alloc(footprint_bytes, 64);
    return [base, ops, footprint_bytes](rt::Worker &w) -> rt::Task {
        return serialBody(w, base, ops, footprint_bytes);
    };
}

} // namespace capsule::wl
