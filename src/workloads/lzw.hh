/**
 * @file
 * Componentised LZW compression (Section 5, Figure 7). The component
 * version recursively splits the input sequence of N characters into
 * two sequences of N/2 characters to parallelise the match search;
 * because each worker performs little processing per character and
 * has frequent opportunities to split, the workload exercises the
 * division throttle (small parallel sections).
 *
 * Each worker compresses its subrange with a private dictionary and
 * the streams are concatenated with range markers, so decompression
 * reproduces the input exactly (round-trip verified).
 */

#ifndef CAPSULE_WL_LZW_HH
#define CAPSULE_WL_LZW_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "sim/machine.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

namespace capsule::wl
{

/** Parameters of one LZW experiment. */
struct LzwParams
{
    int length = 4096;          ///< N characters (paper: 4096)
    int alphabet = 16;          ///< symbol alphabet size
    int minSplit = 64;          ///< stop splitting below this length
    std::uint64_t seed = 1;
};

/** Reference single-dictionary LZW (for unit tests). */
std::vector<int> lzwCompress(const std::vector<std::uint8_t> &in,
                             int alphabet);
std::vector<std::uint8_t> lzwDecompress(const std::vector<int> &codes,
                                        int alphabet);

/** Generate a compressible pseudo-text. */
std::vector<std::uint8_t> makeText(int length, int alphabet, Rng &rng);

/**
 * Simulate componentised LZW under `cfg`'s division policy.
 * Metrics: "chunks" (subranges compressed) and "codes" (emitted code
 * count across all chunks); `correct` is the round trip.
 */
WorkloadResult runLzw(const sim::MachineConfig &cfg,
                      const LzwParams &params);

} // namespace capsule::wl

#endif // CAPSULE_WL_LZW_HH
