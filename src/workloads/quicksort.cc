#include "workloads/quicksort.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace capsule::wl
{
namespace
{

using rt::Task;
using rt::Val;
using rt::Worker;

enum Site : std::uint32_t
{
    sitePartitionLoop = 20,
    siteSwap = 21,
    siteProbe = 22,
    siteInsertOuter = 23,
    siteInsertInner = 24,
};

/** Shared state of one sort run. */
struct Run
{
    std::vector<std::int64_t> &data;
    Addr base;  ///< simulated address of data[0] (8 bytes per slot)

    Addr at(int i) const { return base + Addr(i) * 8; }
};

/** Serial insertion sort for small segments. */
Task
insertionSort(Worker &w, Run &run, int lo, int hi)
{
    for (int i = lo + 1; i <= hi; ++i) {
        std::int64_t key = run.data[std::size_t(i)];
        Val kv = co_await w.load(run.at(i));
        int j = i - 1;
        while (j >= lo && run.data[std::size_t(j)] > key) {
            Val e = co_await w.load(run.at(j));
            co_await w.alu(e, kv);  // the comparison itself
            co_await w.branch(siteInsertInner, true, kv);
            run.data[std::size_t(j + 1)] = run.data[std::size_t(j)];
            co_await w.store(run.at(j + 1), kv);
            co_await w.alu();  // index arithmetic
            --j;
        }
        co_await w.branch(siteInsertInner, false, kv);
        run.data[std::size_t(j + 1)] = key;
        co_await w.store(run.at(j + 1), kv);
        co_await w.branch(siteInsertOuter, i < hi, kv);
    }
}

/** Hoare-style partition emitting per-element work. */
Task
partition(Worker &w, Run &run, int lo, int hi, int &pivot_out)
{
    std::int64_t pivot = run.data[std::size_t((lo + hi) / 2)];
    co_await w.load(run.at((lo + hi) / 2));
    int i = lo;
    int j = hi;
    while (true) {
        while (run.data[std::size_t(i)] < pivot) {
            Val v = co_await w.load(run.at(i));
            Val c = co_await w.alu(v);   // compare against the pivot
            co_await w.alu(c);           // pointer increment
            co_await w.branch(sitePartitionLoop, true, v);
            ++i;
        }
        co_await w.branch(sitePartitionLoop, false, Val{});
        while (run.data[std::size_t(j)] > pivot) {
            Val v = co_await w.load(run.at(j));
            Val c = co_await w.alu(v);
            co_await w.alu(c);
            co_await w.branch(sitePartitionLoop, true, v);
            --j;
        }
        co_await w.branch(sitePartitionLoop, false, Val{});
        if (i >= j)
            break;
        std::swap(run.data[std::size_t(i)], run.data[std::size_t(j)]);
        Val a = co_await w.load(run.at(i));
        Val b = co_await w.load(run.at(j));
        co_await w.store(run.at(i), b);
        co_await w.store(run.at(j), a);
        co_await w.branch(siteSwap, true, a);
        ++i;
        --j;
    }
    pivot_out = j;
}

/** The componentised sort of one segment. */
Task
sortSegment(Worker &w, Run &run, int lo, int hi, int cutoff)
{
    if (hi - lo + 1 <= cutoff) {
        co_await insertionSort(w, run, lo, hi);
        co_return;
    }
    int mid = lo;
    co_await partition(w, run, lo, hi, mid);

    // Divide: the child takes the right half, the parent keeps the
    // left half (mitosis into two smaller workers). A denied probe
    // means the worker carries on serially — it will probe again at
    // every deeper partition point.
    int rlo = mid + 1;
    bool granted = co_await w.probe(
        [&run, rlo, hi, cutoff](Worker &cw) -> Task {
            return sortSegment(cw, run, rlo, hi, cutoff);
        },
        siteProbe);
    co_await sortSegment(w, run, lo, mid, cutoff);
    if (!granted)
        co_await sortSegment(w, run, rlo, hi, cutoff);
}

} // namespace

const char *
listDistributionName(ListDistribution d)
{
    switch (d) {
      case ListDistribution::Uniform:
        return "uniform";
      case ListDistribution::Gaussian:
        return "gaussian";
      case ListDistribution::Exponential:
        return "exponential";
      case ListDistribution::NearlySorted:
        return "nearly-sorted";
      case ListDistribution::FewValues:
        return "few-values";
    }
    return "?";
}

std::vector<std::int64_t>
makeList(ListDistribution d, int length, Rng &rng)
{
    std::vector<std::int64_t> v(static_cast<std::size_t>(length));
    switch (d) {
      case ListDistribution::Uniform:
        for (auto &x : v)
            x = std::int64_t(rng.uniform(0, 1'000'000));
        break;
      case ListDistribution::Gaussian:
        for (auto &x : v)
            x = std::int64_t(rng.gaussian(500'000, 100'000));
        break;
      case ListDistribution::Exponential:
        for (auto &x : v)
            x = std::int64_t(rng.exponential(1.0 / 50'000.0));
        break;
      case ListDistribution::NearlySorted:
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = std::int64_t(i) * 10;
        for (int s = 0; s < length / 20; ++s) {
            auto a = std::size_t(rng.uniform(0, std::uint64_t(length - 1)));
            auto b = std::size_t(rng.uniform(0, std::uint64_t(length - 1)));
            std::swap(v[a], v[b]);
        }
        break;
      case ListDistribution::FewValues:
        for (auto &x : v)
            x = std::int64_t(rng.uniform(0, 7));
        break;
    }
    return v;
}

WorkloadResult
runQuickSort(const sim::MachineConfig &cfg,
             const QuickSortParams &params,
             sim::Machine::DivisionObserver obs)
{
    Rng rng(params.seed);
    std::vector<std::int64_t> data =
        makeList(params.distribution, params.length, rng);
    std::vector<std::int64_t> golden = data;
    std::sort(golden.begin(), golden.end());

    rt::Exec exec;
    Addr base = exec.arena().alloc(std::uint64_t(params.length) * 8, 64);
    Run run{data, base};

    int n = params.length;
    int cutoff = params.serialCutoff;
    WorkloadResult res;
    res.workload = "quicksort";
    res.stats = simulate(
        cfg, exec,
        [&run, n, cutoff](Worker &w) -> Task {
            return sortSegment(w, run, 0, n - 1, cutoff);
        },
        std::move(obs));
    res.correct = data == golden;
    return res;
}

} // namespace capsule::wl
