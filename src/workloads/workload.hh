/**
 * @file
 * The unified workload layer: every evaluated program (QuickSort,
 * Dijkstra, LZW, Perceptron and the four SPEC CINT2000 analogues)
 * reports its simulation through one `WorkloadResult`, and a
 * `WorkloadRegistry` maps workload names to factories parameterised
 * by machine configuration, data-set scale and seed. Every factory
 * simulates through the backend seam (`sim/backend.hh`), so a sweep
 * can target the SMT or the CMP machine just by naming it in
 * `MachineConfig::backend`. The experiment engine
 * (`harness/experiment.hh`) fans registry points out across host
 * threads; because every factory derives all randomness from the
 * request seed, results are a pure function of (config, scale, seed)
 * and identical at any job count.
 */

#ifndef CAPSULE_WL_WORKLOAD_HH
#define CAPSULE_WL_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/machine.hh"

namespace capsule::wl
{

/**
 * Data-set sizing shared by the registry factories and the bench
 * harnesses: Quick is CI-fast, Default is minutes-scale, Paper is
 * the full published data-set sizes.
 */
enum class ScaleLevel
{
    Quick,
    Default,
    Paper,
};

const char *scaleLevelName(ScaleLevel level);

/** Pick a value by scale: quick / default / paper. */
template <typename T>
T
pickByScale(ScaleLevel level, T quick, T dflt, T paper)
{
    switch (level) {
      case ScaleLevel::Quick: return quick;
      case ScaleLevel::Paper: return paper;
      default: return dflt;
    }
}

/**
 * Common result of one workload simulation. `stats` always covers
 * the componentised section (for the SPEC analogues the calibrated
 * serial remainder is `serialCycles`); workload-specific numbers
 * (route costs, router iterations, chunk counts, ...) live in the
 * insertion-ordered `metrics` map so harnesses and tests read every
 * workload through one shape.
 */
struct WorkloadResult
{
    std::string workload;     ///< registry name of the workload
    sim::RunStats stats;      ///< componentised-section statistics
    bool correct = false;     ///< matches the golden reference
    Cycle serialCycles = 0;   ///< serial remainder (0 = none)
    /** key -> value, in insertion order. */
    std::vector<std::pair<std::string, double>> metrics;

    /** Set (or overwrite) a workload-specific metric. */
    void setMetric(const std::string &key, double value);
    /** Read a metric; `fallback` when the key is absent. */
    double metric(const std::string &key, double fallback = 0.0) const;
    bool hasMetric(const std::string &key) const;

    bool operator==(const WorkloadResult &) const = default;
};

/** Everything a registry factory needs besides the machine. */
struct WorkloadRequest
{
    ScaleLevel scale = ScaleLevel::Default;
    std::uint64_t seed = 1;
};

/**
 * Name -> factory map over the evaluated workloads. The builtin()
 * registry covers every workload in this directory; factories choose
 * the same data-set sizes the paper harnesses use at each scale, and
 * derive all randomness from the request seed (determinism across
 * host-parallel execution).
 */
class WorkloadRegistry
{
  public:
    using Factory = std::function<WorkloadResult(
        const sim::MachineConfig &, const WorkloadRequest &)>;

    /** Register a factory; aborts on a duplicate name. */
    void add(const std::string &name, Factory factory);

    bool contains(const std::string &name) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** Run one workload; throws std::out_of_range on unknown names. */
    WorkloadResult run(const std::string &name,
                       const sim::MachineConfig &cfg,
                       const WorkloadRequest &req) const;

    /** The process-wide registry of all built-in workloads. */
    static const WorkloadRegistry &builtin();

  private:
    std::vector<std::pair<std::string, Factory>> factories;
};

} // namespace capsule::wl

#endif // CAPSULE_WL_WORKLOAD_HH
