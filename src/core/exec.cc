#include "core/exec.hh"

namespace capsule::rt
{

StackPool::StackPool(mem::Arena &arena_ref, std::uint64_t stack_bytes,
                     std::size_t reserve_stacks)
    : arena(arena_ref), stackBytes(stack_bytes),
      head(arena_ref.alloc(64, 64))
{
    freeList.reserve(reserve_stacks);
}

Addr
StackPool::take()
{
    if (!freeList.empty()) {
        Addr a = freeList.back();
        freeList.pop_back();
        return a;
    }
    ++total;
    return arena.alloc(stackBytes, 64);
}

void
StackPool::give(Addr stack)
{
    freeList.push_back(stack);
}

Exec::Exec(std::uint64_t heap_bytes)
    : heap(0x1000000, heap_bytes), stackPool(heap)
{
}

} // namespace capsule::rt
