#include "core/task.hh"

// Task is header-only; this translation unit pins the library archive.
