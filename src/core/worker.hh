/**
 * @file
 * The CAPSULE worker API: the capability handed to component bodies.
 *
 * A worker body is a coroutine `Task body(Worker &w)`. Every
 * architectural event is expressed by co_awaiting a Worker operation,
 * which emits dynamic instructions into the thread's channel:
 *
 *   Val v = co_await w.load(addr);         // LOAD (cache-modelled)
 *   Val s = co_await w.alu(v);             // dependent IALU
 *   co_await w.store(addr, s);             // STORE
 *   co_await w.branch(SITE, taken, s);     // predicted BRANCH
 *   co_await w.lock(node); ... w.unlock(node);  // mlock/munlock
 *   bool got = co_await w.probe(childFn);  // nthr: conditional division
 *
 * Value handles (Val) carry synthetic register names so the pipeline
 * observes true data dependences; sites give branches and probes
 * stable PCs shared by all workers running the same code.
 */

#ifndef CAPSULE_CORE_WORKER_HH
#define CAPSULE_CORE_WORKER_HH

#include <cstdint>

#include "core/exec.hh"
#include "core/task.hh"
#include "isa/isa.hh"

namespace capsule::rt
{

/** A value handle: names the synthetic register holding a result. */
struct Val
{
    std::uint8_t reg = isa::noReg;
    bool fp = false;
};

/** The per-thread capability used by worker bodies. */
class Worker
{
  public:
    Worker(Exec &exec, Channel &chan);

    // ---- awaitables ------------------------------------------------
    /** Emits `count` staged instructions then suspends to the driver;
     *  await_resume yields the result value handle (if any). */
    class [[nodiscard]] Op
    {
      public:
        Op(Channel &chan, Val result) : ch(chan), res(result) {}

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            ch.resumePoint = h;
        }

        Val await_resume() const noexcept { return res; }

      private:
        Channel &ch;
        Val res;
    };

    /** The conditional-division awaitable; resumes with the grant. */
    class [[nodiscard]] Probe
    {
      public:
        explicit Probe(Channel &chan) : ch(chan) {}

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            ch.resumePoint = h;
        }

        bool await_resume() const noexcept { return ch.probeGranted; }

      private:
        Channel &ch;
    };

    // ---- integer / fp data-flow ops ---------------------------------
    /** Integer load from a simulated address. */
    Op load(Addr a);
    /** Floating-point load. */
    Op loadf(Addr a);
    /** Store (optionally dependent on a produced value). */
    Op store(Addr a, Val v = {});
    Op storef(Addr a, Val v = {});
    /** One integer ALU op, result depends on the given sources. */
    Op alu(Val a = {}, Val b = {});
    /** Integer multiply. */
    Op mul(Val a = {}, Val b = {});
    /** FP add / multiply. */
    Op fadd(Val a = {}, Val b = {});
    Op fmul(Val a = {}, Val b = {});
    /** `n` independent integer ALU ops (bulk parallel work). */
    Op compute(int n);
    /** `n` serially dependent ALU ops starting from `src`. */
    Op chain(Val src, int n);

    // ---- control flow ----------------------------------------------
    /**
     * Conditional branch at a stable site PC. Taken backedges end the
     * fetch packet exactly as in the hardware; mispredictions stall
     * fetch until resolution.
     */
    Op branch(std::uint32_t site, bool taken, Val dep = {});
    /** Unconditional jump (ends the fetch packet). */
    Op jump(std::uint32_t site);

    // ---- CAPSULE extensions ------------------------------------------
    /** mlock on the base address of a shared object. */
    Op lock(Addr a);
    /** munlock; the oldest waiter becomes the owner. */
    Op unlock(Addr a);
    /**
     * Conditional division (the `coworker` call after preprocessing):
     * emits nthr at the site PC; the architecture decides. On grant
     * the child body runs in a new thread with its own stack from the
     * pool; the parent continues as the "left" half.
     */
    Probe probe(WorkerFn child, std::uint32_t site = 0);

    // ---- introspection -----------------------------------------------
    std::uint64_t emitted() const { return nEmitted; }
    Exec &exec() { return ex; }

  private:
    friend class KernelProgram;

    Val allocInt();
    Val allocFp();
    Addr nextStraightPc();
    Addr sitePc(std::uint32_t site) const;
    void push(isa::DynInst inst);

    Exec &ex;
    Channel &ch;
    std::uint8_t intCursor = 1;   ///< r1..r30 round robin
    std::uint8_t fpCursor = 0;    ///< f0..f29 round robin
    std::uint32_t pcCursor = 0;   ///< rolling straight-line code PC
    std::uint64_t nEmitted = 0;
};

} // namespace capsule::rt

#endif // CAPSULE_CORE_WORKER_HH
