/**
 * @file
 * The coroutine task type for CAPSULE workers.
 *
 * A worker body is a C++20 coroutine returning Task. Each co_await of
 * a Worker operation emits one or more dynamic instructions into the
 * thread's Channel and suspends the whole coroutine stack; the
 * KernelProgram driver drains the channel one instruction per
 * Machine fetch-pull and resumes the innermost coroutine when the
 * channel runs dry. Tasks nest: a worker may co_await helper tasks,
 * with completion resuming the parent through symmetric transfer.
 */

#ifndef CAPSULE_CORE_TASK_HH
#define CAPSULE_CORE_TASK_HH

#include <coroutine>
#include <deque>
#include <exception>
#include <functional>
#include <utility>

#include "isa/isa.hh"

namespace capsule::rt
{

class Worker;

/**
 * The communication channel between one worker coroutine stack and
 * its KernelProgram driver.
 */
struct Channel
{
    /** Instructions staged for the pipeline, oldest first. */
    std::deque<isa::DynInst> pending;
    /** The innermost suspended coroutine, resumed when pending dries. */
    std::coroutine_handle<> resumePoint;
    /** Set between emitting an Nthr record and its resolution. */
    bool probePending = false;
    bool probeGranted = false;
    /** Child worker body captured by the probe. */
    std::function<class Task(Worker &)> probeChild;
};

/** Coroutine task; see file comment. */
class Task
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(
                    *this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(
                std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> handle)
        : h(handle)
    {}

    Task(Task &&other) noexcept : h(std::exchange(other.h, {})) {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            h = std::exchange(other.h, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return bool(h); }
    bool done() const { return !h || h.done(); }
    std::coroutine_handle<promise_type> handle() const { return h; }

    // Awaitable interface for nesting: co_await subtask(...).
    bool await_ready() const noexcept { return done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        h.promise().continuation = parent;
        return h;  // symmetric transfer into the child task
    }

    void await_resume() const noexcept {}

  private:
    void
    destroy()
    {
        if (h) {
            h.destroy();
            h = {};
        }
    }

    std::coroutine_handle<promise_type> h;
};

/** A worker body: the code a divided component runs. */
using WorkerFn = std::function<Task(Worker &)>;

} // namespace capsule::rt

#endif // CAPSULE_CORE_TASK_HH
