#include "core/worker.hh"

#include "base/logging.hh"

namespace capsule::rt
{

using isa::DynInst;
using isa::OpClass;

Worker::Worker(Exec &exec, Channel &chan) : ex(exec), ch(chan)
{
}

Val
Worker::allocInt()
{
    Val v{intCursor, false};
    intCursor = std::uint8_t(intCursor == 30 ? 1 : intCursor + 1);
    return v;
}

Val
Worker::allocFp()
{
    Val v{fpCursor, true};
    fpCursor = std::uint8_t(fpCursor == 29 ? 0 : fpCursor + 1);
    return v;
}

Addr
Worker::nextStraightPc()
{
    const CodeLayout &cl = ex.code();
    Addr pc = cl.straightBase() + (pcCursor % cl.straightWindowBytes);
    pcCursor += 4;
    return pc;
}

Addr
Worker::sitePc(std::uint32_t site) const
{
    const CodeLayout &cl = ex.code();
    CAPSULE_ASSERT(site < cl.maxSites, "branch site ", site,
                   " exceeds code layout capacity");
    return cl.base + Addr(site) * 4;
}

void
Worker::push(DynInst inst)
{
    ch.pending.push_back(inst);
    ++nEmitted;
}

Worker::Op
Worker::load(Addr a)
{
    Val dst = allocInt();
    DynInst d;
    d.cls = OpClass::Load;
    d.pc = nextStraightPc();
    d.rd = dst.reg;
    d.effAddr = a;
    d.accessBytes = 8;
    push(d);
    return Op(ch, dst);
}

Worker::Op
Worker::loadf(Addr a)
{
    Val dst = allocFp();
    DynInst d;
    d.cls = OpClass::Load;
    d.pc = nextStraightPc();
    d.rd = dst.reg;
    d.fpRegs = true;
    d.effAddr = a;
    d.accessBytes = 8;
    push(d);
    return Op(ch, dst);
}

Worker::Op
Worker::store(Addr a, Val v)
{
    DynInst d;
    d.cls = OpClass::Store;
    d.pc = nextStraightPc();
    d.rs1 = v.reg;
    d.fpRegs = v.fp;
    d.effAddr = a;
    d.accessBytes = 8;
    push(d);
    return Op(ch, Val{});
}

Worker::Op
Worker::storef(Addr a, Val v)
{
    Val src = v;
    src.fp = true;
    return store(a, src);
}

Worker::Op
Worker::alu(Val a, Val b)
{
    Val dst = allocInt();
    DynInst d;
    d.cls = OpClass::IntAlu;
    d.pc = nextStraightPc();
    d.rd = dst.reg;
    d.rs1 = a.reg;
    d.rs2 = b.reg;
    push(d);
    return Op(ch, dst);
}

Worker::Op
Worker::mul(Val a, Val b)
{
    Val dst = allocInt();
    DynInst d;
    d.cls = OpClass::IntMult;
    d.pc = nextStraightPc();
    d.rd = dst.reg;
    d.rs1 = a.reg;
    d.rs2 = b.reg;
    push(d);
    return Op(ch, dst);
}

Worker::Op
Worker::fadd(Val a, Val b)
{
    Val dst = allocFp();
    DynInst d;
    d.cls = OpClass::FpAlu;
    d.pc = nextStraightPc();
    d.rd = dst.reg;
    d.rs1 = a.reg;
    d.rs2 = b.reg;
    d.fpRegs = true;
    push(d);
    return Op(ch, dst);
}

Worker::Op
Worker::fmul(Val a, Val b)
{
    Val dst = allocFp();
    DynInst d;
    d.cls = OpClass::FpMult;
    d.pc = nextStraightPc();
    d.rd = dst.reg;
    d.rs1 = a.reg;
    d.rs2 = b.reg;
    d.fpRegs = true;
    push(d);
    return Op(ch, dst);
}

Worker::Op
Worker::compute(int n)
{
    CAPSULE_ASSERT(n >= 0, "negative op count");
    for (int i = 0; i < n; ++i) {
        DynInst d;
        d.cls = OpClass::IntAlu;
        d.pc = nextStraightPc();
        d.rd = allocInt().reg;
        push(d);
    }
    return Op(ch, Val{});
}

Worker::Op
Worker::chain(Val src, int n)
{
    CAPSULE_ASSERT(n >= 0, "negative chain length");
    Val cur = src;
    for (int i = 0; i < n; ++i) {
        Val dst = allocInt();
        DynInst d;
        d.cls = OpClass::IntAlu;
        d.pc = nextStraightPc();
        d.rd = dst.reg;
        d.rs1 = cur.reg;
        push(d);
        cur = dst;
    }
    return Op(ch, cur);
}

Worker::Op
Worker::branch(std::uint32_t site, bool taken, Val dep)
{
    DynInst d;
    d.cls = OpClass::Branch;
    d.pc = sitePc(site);
    d.rs1 = dep.reg;
    d.taken = taken;
    d.target = taken ? sitePc(site) + 4 : 0;
    push(d);
    return Op(ch, Val{});
}

Worker::Op
Worker::jump(std::uint32_t site)
{
    DynInst d;
    d.cls = OpClass::Jump;
    d.pc = sitePc(site);
    d.taken = true;
    d.target = sitePc(site) + 4;
    push(d);
    return Op(ch, Val{});
}

Worker::Op
Worker::lock(Addr a)
{
    DynInst d;
    d.cls = OpClass::Mlock;
    d.pc = nextStraightPc();
    d.effAddr = a;
    d.accessBytes = 8;
    push(d);
    return Op(ch, Val{});
}

Worker::Op
Worker::unlock(Addr a)
{
    DynInst d;
    d.cls = OpClass::Munlock;
    d.pc = nextStraightPc();
    d.effAddr = a;
    d.accessBytes = 8;
    push(d);
    return Op(ch, Val{});
}

Worker::Probe
Worker::probe(WorkerFn child, std::uint32_t site)
{
    DynInst d;
    d.cls = OpClass::Nthr;
    d.pc = sitePc(site);
    d.target = sitePc(site) + 4;
    push(d);
    ch.probePending = true;
    ch.probeGranted = false;
    ch.probeChild = std::move(child);
    return Probe(ch);
}

} // namespace capsule::rt
