/**
 * @file
 * KernelProgram: the front::Program implementation driving one worker
 * coroutine stack. It drains the worker's channel one instruction per
 * fetch pull, resumes the coroutine when the channel runs dry, and
 * implements the division protocol: on a granted nthr it constructs
 * the child KernelProgram (with its stack from the pre-allocated
 * pool and the child-side division prologue) and charges the
 * parent-side prologue; on completion it emits the worker's kthr
 * (halt for the ancestor) and recycles the stack.
 */

#ifndef CAPSULE_CORE_KERNEL_PROGRAM_HH
#define CAPSULE_CORE_KERNEL_PROGRAM_HH

#include <memory>

#include "core/exec.hh"
#include "core/task.hh"
#include "core/worker.hh"
#include "front/program.hh"

namespace capsule::rt
{

/** Drives one worker coroutine as a simulated thread. */
class KernelProgram : public front::Program
{
  public:
    /**
     * @param exec shared per-benchmark context
     * @param body the worker's code
     * @param ancestor true for the group ancestor (ends with halt,
     *        never kthr, per Section 3.1)
     */
    KernelProgram(Exec &exec, WorkerFn body, bool ancestor);
    ~KernelProgram() override;

    bool next(isa::DynInst &out) override;
    std::unique_ptr<front::Program> resolveNthr(bool granted) override;

    const Worker &worker() const { return w; }

  private:
    /**
     * Stage the division-prologue instructions (stack management of
     * Section 3.2, ~15 cycles per division in total across parent and
     * child).
     */
    void stagePrologue(int ops);

    Exec &ex;
    Channel chan;
    Worker w;
    WorkerFn body;
    Task root;
    bool ancestor;
    bool started = false;
    bool awaitingNthr = false;
    bool deathStaged = false;
    Addr stackAddr = 0;
};

/** Convenience: make an ancestor program for `body`. */
std::unique_ptr<KernelProgram> makeAncestor(Exec &exec, WorkerFn body);

} // namespace capsule::rt

#endif // CAPSULE_CORE_KERNEL_PROGRAM_HH
