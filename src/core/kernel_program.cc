#include "core/kernel_program.hh"

#include "base/logging.hh"

namespace capsule::rt
{

using isa::DynInst;
using isa::OpClass;

KernelProgram::KernelProgram(Exec &exec, WorkerFn body_fn,
                             bool is_ancestor)
    : ex(exec), w(exec, chan), body(std::move(body_fn)),
      ancestor(is_ancestor)
{
    stackAddr = ex.stacks().take();
    if (!ancestor) {
        // Child side of a division: stack setup from the pool.
        stagePrologue(ex.childPrologueOps());
    }
}

KernelProgram::~KernelProgram()
{
    // The stack returns to the pool even if the simulation aborted
    // mid-run; double-give is avoided via the death flag.
    if (!deathStaged && stackAddr)
        ex.stacks().give(stackAddr);
}

void
KernelProgram::stagePrologue(int ops)
{
    // Stack-management work of Section 3.2. The child side takes a
    // stack from the shared pre-allocated pool, which is a critical
    // section on the pool's free-list head; the parent side only
    // adjusts its own bookkeeping. Filler ALU ops bring the total to
    // the measured ~15-cycle division overhead.
    CAPSULE_ASSERT(ops >= 0, "negative prologue length");
    Addr poolHead = ex.stacks().headAddr();
    Val v;
    int emittedOps = 0;
    if (ops >= 7) {
        auto emitSimple = [&](OpClass cls, Addr addr,
                              std::uint8_t rd, std::uint8_t rs1) {
            DynInst d;
            d.cls = cls;
            d.pc = w.nextStraightPc();
            d.rd = rd;
            d.rs1 = rs1;
            d.effAddr = addr;
            d.accessBytes = addr ? 8 : 0;
            w.push(d);
        };
        v = w.allocInt();
        // Pop a stack from the pool under the hardware lock.
        emitSimple(OpClass::Mlock, poolHead, isa::noReg, isa::noReg);
        emitSimple(OpClass::Load, poolHead, v.reg, isa::noReg);
        Val next = w.allocInt();
        emitSimple(OpClass::IntAlu, 0, next.reg, v.reg);
        emitSimple(OpClass::Store, poolHead, isa::noReg, next.reg);
        emitSimple(OpClass::Munlock, poolHead, isa::noReg,
                   isa::noReg);
        // Touch the stack base (frame setup).
        emitSimple(OpClass::Store, stackAddr, isa::noReg, v.reg);
        emitSimple(OpClass::Load, stackAddr, v.reg, isa::noReg);
        emittedOps = 7;
    }
    Val cur = v;
    for (; emittedOps < ops; ++emittedOps) {
        Val dst = w.allocInt();
        DynInst d;
        d.cls = OpClass::IntAlu;
        d.pc = w.nextStraightPc();
        d.rd = dst.reg;
        d.rs1 = cur.reg;
        w.push(d);
        cur = dst;
    }
}

bool
KernelProgram::next(isa::DynInst &out)
{
    CAPSULE_ASSERT(!awaitingNthr,
                   "next() called with an unresolved probe");

    while (chan.pending.empty()) {
        if (!started) {
            started = true;
            root = body(w);
            CAPSULE_ASSERT(root.valid(), "worker body is not a Task "
                                         "coroutine");
            root.handle().resume();
            continue;
        }
        if (root.done()) {
            if (deathStaged)
                return false;
            deathStaged = true;
            ex.stacks().give(stackAddr);
            DynInst d;
            d.cls = ancestor ? OpClass::Halt : OpClass::Kthr;
            d.pc = w.nextStraightPc();
            chan.pending.push_back(d);
            continue;
        }
        CAPSULE_ASSERT(chan.resumePoint,
                       "no staged work and no resume point");
        chan.resumePoint.resume();
    }

    out = chan.pending.front();
    chan.pending.pop_front();
    if (out.cls == OpClass::Nthr)
        awaitingNthr = true;
    return true;
}

std::unique_ptr<front::Program>
KernelProgram::resolveNthr(bool granted)
{
    CAPSULE_ASSERT(awaitingNthr, "resolveNthr without a pending nthr");
    CAPSULE_ASSERT(chan.probePending, "channel has no probe state");
    awaitingNthr = false;
    chan.probePending = false;
    chan.probeGranted = granted;

    if (!granted) {
        chan.probeChild = nullptr;
        return nullptr;
    }
    // Parent-side stack bookkeeping for the division.
    stagePrologue(ex.parentPrologueOps());
    auto child = std::make_unique<KernelProgram>(
        ex, std::move(chan.probeChild), false);
    chan.probeChild = nullptr;
    return child;
}

std::unique_ptr<KernelProgram>
makeAncestor(Exec &exec, WorkerFn body)
{
    return std::make_unique<KernelProgram>(exec, std::move(body), true);
}

} // namespace capsule::rt
