/**
 * @file
 * Shared execution context for one componentised benchmark run: the
 * simulated address space (arena), the pre-allocated worker stack
 * pool of Section 3.2, and the synthetic code layout that gives every
 * emission site a stable PC (shared across worker instances running
 * the same code, so the branch predictor and the I-cache see one code
 * image, not one per worker).
 */

#ifndef CAPSULE_CORE_EXEC_HH
#define CAPSULE_CORE_EXEC_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "mem/arena.hh"

namespace capsule::rt
{

/** Layout constants of the synthetic code image. */
struct CodeLayout
{
    Addr base = 0x10000;
    /** Branch/nthr sites live at base + site*4; below this count. */
    std::uint32_t maxSites = 4096;
    /** Straight-line code occupies a rolling window after the sites. */
    Addr straightBase() const { return base + Addr(maxSites) * 4; }
    std::uint32_t straightWindowBytes = 2048;
};

/**
 * Pool of pre-allocated worker stacks (Section 3.2: "a new stack is
 * allocated from a pre-allocated pool" on division). Returns recycled
 * simulated addresses; the division prologue touches the stack head.
 */
class StackPool
{
  public:
    StackPool(mem::Arena &arena, std::uint64_t stack_bytes = 1024,
              std::size_t reserve_stacks = 64);

    /** Take a stack (grows the pool from the arena when empty). */
    Addr take();

    /** Return a stack for reuse. */
    void give(Addr stack);

    std::size_t allocated() const { return total; }

    /**
     * Simulated address of the pool's free-list head. Allocation
     * from the shared pool is a critical section: the division
     * prologue locks this address, which is what makes storms of
     * tiny divisions expensive (and the death throttle worthwhile).
     */
    Addr headAddr() const { return head; }

  private:
    mem::Arena &arena;
    std::uint64_t stackBytes;
    Addr head;
    std::vector<Addr> freeList;
    std::size_t total = 0;
};

/** Per-benchmark shared context for all workers of one run. */
class Exec
{
  public:
    /**
     * @param heap_bytes size of the simulated heap served by arena()
     */
    explicit Exec(std::uint64_t heap_bytes = 64ULL << 20);

    mem::Arena &arena() { return heap; }
    StackPool &stacks() { return stackPool; }
    const CodeLayout &code() const { return layout; }

    /** Division-prologue lengths (measured ~15 cycles per division). */
    int parentPrologueOps() const { return 3; }
    int childPrologueOps() const { return 12; }

  private:
    mem::Arena heap;
    StackPool stackPool;
    CodeLayout layout;
};

} // namespace capsule::rt

#endif // CAPSULE_CORE_EXEC_HH
