#include "casm/assembler.hh"

#include <cctype>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "base/digest.hh"
#include "base/logging.hh"

namespace capsule::casm
{
namespace
{

using isa::Opcode;

const std::unordered_map<std::string, Opcode> &
mnemonicTable()
{
    static const std::unordered_map<std::string, Opcode> table = [] {
        std::unordered_map<std::string, Opcode> t;
        for (int i = 0; i < int(Opcode::NumOpcodes); ++i) {
            auto op = Opcode(i);
            t.emplace(isa::mnemonic(op), op);
        }
        return t;
    }();
    return table;
}

/** Parse "r5" / "f12" / "-"; returns nullopt on bad syntax. */
std::optional<std::uint8_t>
parseReg(const std::string &tok)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'f'))
        return std::nullopt;
    int v = 0;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return std::nullopt;
        v = v * 10 + (tok[i] - '0');
    }
    int lim = tok[0] == 'r' ? isa::numIntRegs : isa::numFpRegs;
    if (v >= lim)
        return std::nullopt;
    return std::uint8_t(v);
}

std::optional<std::int64_t>
parseInt(const std::string &tok)
{
    if (tok.empty())
        return std::nullopt;
    std::size_t i = 0;
    bool neg = false;
    if (tok[0] == '-' || tok[0] == '+') {
        neg = tok[0] == '-';
        i = 1;
    }
    if (i >= tok.size())
        return std::nullopt;
    int radix = 10;
    if (tok.size() > i + 2 && tok[i] == '0' &&
        (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
        radix = 16;
        i += 2;
    }
    std::int64_t v = 0;
    for (; i < tok.size(); ++i) {
        char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(tok[i])));
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (radix == 16 && c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else
            return std::nullopt;
        v = v * radix + digit;
    }
    return neg ? -v : v;
}

bool
isIdentifier(const std::string &tok)
{
    if (tok.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(tok[0])) &&
        tok[0] != '_' && tok[0] != '.')
        return false;
    for (char c : tok) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.')
            return false;
    }
    return true;
}

} // namespace

std::uint64_t
Image::digest() const
{
    Digest d;
    d.str("capsule-image-v1");
    d.u64(base);
    d.u64(words.size());
    for (std::uint32_t w : words)
        d.u64(w);
    return d.value();
}

Addr
Image::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        CAPSULE_FATAL("undefined symbol '", name, "'");
    return it->second;
}

void
Assembler::error(int line, const std::string &msg)
{
    diags.push_back(Diagnostic{line, msg});
}

bool
Assembler::tokenize(const std::string &source, std::vector<Line> &lines)
{
    std::istringstream in(source);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
        ++number;
        // Strip comments.
        for (std::size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] == '#' || raw[i] == ';') {
                raw.resize(i);
                break;
            }
        }
        // Split off a leading "label:" if present.
        Line line;
        line.number = number;
        std::size_t colon = raw.find(':');
        std::string body = raw;
        if (colon != std::string::npos) {
            std::string label = raw.substr(0, colon);
            // Trim whitespace.
            while (!label.empty() && std::isspace(
                       static_cast<unsigned char>(label.front())))
                label.erase(label.begin());
            while (!label.empty() && std::isspace(
                       static_cast<unsigned char>(label.back())))
                label.pop_back();
            if (!isIdentifier(label)) {
                error(number, "bad label '" + label + "'");
                continue;
            }
            line.label = label;
            body = raw.substr(colon + 1);
        }
        // Tokenize the body: mnemonic then comma-separated operands.
        std::istringstream bs(body);
        std::string mnem;
        bs >> mnem;
        line.mnemonic = mnem;
        std::string rest;
        std::getline(bs, rest);
        std::string tok;
        for (char c : rest) {
            if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
                if (!tok.empty()) {
                    line.operands.push_back(tok);
                    tok.clear();
                }
            } else {
                tok.push_back(c);
            }
        }
        if (!tok.empty())
            line.operands.push_back(tok);
        if (!line.label.empty() || !line.mnemonic.empty())
            lines.push_back(std::move(line));
    }
    return diags.empty();
}

bool
Assembler::assemble(const std::string &source)
{
    result = Image{};
    result.base = base;
    diags.clear();

    std::vector<Line> lines;
    tokenize(source, lines);

    // Pass 1: assign addresses to labels, handling .org.
    Addr pc = base;
    for (const auto &line : lines) {
        if (!line.label.empty()) {
            if (result.symbols.count(line.label))
                error(line.number,
                      "duplicate label '" + line.label + "'");
            result.symbols[line.label] = pc;
        }
        if (line.mnemonic.empty())
            continue;
        if (line.mnemonic == ".org") {
            auto v = line.operands.size() == 1
                         ? parseInt(line.operands[0])
                         : std::nullopt;
            if (!v || Addr(*v) < pc) {
                error(line.number, "bad .org operand");
                continue;
            }
            pc = Addr(*v);
        } else {
            pc += 4;
        }
    }

    // Pass 2: encode.
    pc = base;
    auto emit = [&](std::uint32_t word) {
        Addr index = (pc - base) / 4;
        if (result.words.size() <= index)
            result.words.resize(index + 1, 0);
        result.words[index] = word;
        pc += 4;
    };
    auto resolve = [&](const Line &line, const std::string &tok)
        -> std::optional<std::int64_t> {
        if (auto v = parseInt(tok))
            return v;
        auto it = result.symbols.find(tok);
        if (it != result.symbols.end())
            return std::int64_t(it->second);
        error(line.number, "undefined symbol '" + tok + "'");
        return std::nullopt;
    };

    for (const auto &line : lines) {
        if (line.mnemonic.empty())
            continue;
        if (line.mnemonic == ".org") {
            if (auto v = parseInt(line.operands[0]))
                pc = Addr(*v);
            continue;
        }
        if (line.mnemonic == ".word") {
            auto v = line.operands.size() == 1
                         ? resolve(line, line.operands[0])
                         : std::nullopt;
            if (!v) {
                error(line.number, ".word needs one value");
                continue;
            }
            emit(std::uint32_t(*v));
            continue;
        }

        auto it = mnemonicTable().find(line.mnemonic);
        if (it == mnemonicTable().end()) {
            error(line.number,
                  "unknown mnemonic '" + line.mnemonic + "'");
            continue;
        }
        Opcode op = it->second;
        isa::StaticInst inst;
        inst.op = op;
        const auto &ops = line.operands;
        auto needOps = [&](std::size_t n) {
            if (ops.size() != n) {
                error(line.number, "expected " + std::to_string(n) +
                                       " operands for '" +
                                       line.mnemonic + "'");
                return false;
            }
            return true;
        };
        auto reg = [&](const std::string &tok) -> std::uint8_t {
            auto r = parseReg(tok);
            if (!r) {
                error(line.number, "bad register '" + tok + "'");
                return isa::noReg;
            }
            return *r;
        };

        bool ok = true;
        switch (isa::opClassOf(op)) {
          case isa::OpClass::Nop:
          case isa::OpClass::Kthr:
          case isa::OpClass::Halt:
            ok = needOps(0);
            break;
          case isa::OpClass::IntAlu:
          case isa::OpClass::IntMult:
          case isa::OpClass::FpAlu:
          case isa::OpClass::FpMult:
            if (op == Opcode::Lui) {
                ok = needOps(2);
                if (ok) {
                    inst.rd = reg(ops[0]);
                    if (auto v = resolve(line, ops[1]))
                        inst.imm = std::int32_t(*v);
                    else
                        ok = false;
                }
            } else if (op == Opcode::Fcvt) {
                // fcvt fD, rS: int-to-fp conversion, two operands.
                ok = needOps(2);
                if (ok) {
                    inst.rd = reg(ops[0]);
                    inst.rs1 = reg(ops[1]);
                }
            } else if (op >= Opcode::Addi && op <= Opcode::Slti) {
                ok = needOps(3);
                if (ok) {
                    inst.rd = reg(ops[0]);
                    inst.rs1 = reg(ops[1]);
                    if (auto v = resolve(line, ops[2]))
                        inst.imm = std::int32_t(*v);
                    else
                        ok = false;
                }
            } else {
                ok = needOps(3);
                if (ok) {
                    inst.rd = reg(ops[0]);
                    inst.rs1 = reg(ops[1]);
                    inst.rs2 = reg(ops[2]);
                }
            }
            break;
          case isa::OpClass::Load: {
            ok = needOps(2);
            if (!ok)
                break;
            inst.rd = reg(ops[0]);
            // Parse "disp(base)".
            const std::string &m = ops[1];
            auto open = m.find('(');
            auto close = m.find(')');
            if (open == std::string::npos || close == std::string::npos ||
                close < open) {
                error(line.number, "bad memory operand '" + m + "'");
                ok = false;
                break;
            }
            std::string disp = m.substr(0, open);
            std::string baseReg = m.substr(open + 1, close - open - 1);
            inst.rs1 = reg(baseReg);
            if (disp.empty()) {
                inst.imm = 0;
            } else if (auto v = parseInt(disp)) {
                inst.imm = std::int32_t(*v);
            } else {
                error(line.number, "bad displacement '" + disp + "'");
                ok = false;
            }
            break;
          }
          case isa::OpClass::Store: {
            ok = needOps(2);
            if (!ok)
                break;
            inst.rs2 = reg(ops[0]);
            const std::string &m = ops[1];
            auto open = m.find('(');
            auto close = m.find(')');
            if (open == std::string::npos || close == std::string::npos ||
                close < open) {
                error(line.number, "bad memory operand '" + m + "'");
                ok = false;
                break;
            }
            std::string disp = m.substr(0, open);
            std::string baseReg = m.substr(open + 1, close - open - 1);
            inst.rs1 = reg(baseReg);
            if (disp.empty()) {
                inst.imm = 0;
            } else if (auto v = parseInt(disp)) {
                inst.imm = std::int32_t(*v);
            } else {
                error(line.number, "bad displacement '" + disp + "'");
                ok = false;
            }
            break;
          }
          case isa::OpClass::Branch: {
            ok = needOps(3);
            if (!ok)
                break;
            inst.rs1 = reg(ops[0]);
            inst.rs2 = reg(ops[1]);
            if (auto v = resolve(line, ops[2])) {
                // PC-relative in instruction units.
                std::int64_t delta = (*v - std::int64_t(pc)) / 4;
                inst.imm = std::int32_t(delta);
            } else {
                ok = false;
            }
            break;
          }
          case isa::OpClass::Jump: {
            if (op == Opcode::Jr) {
                ok = needOps(1);
                if (ok)
                    inst.rs1 = reg(ops[0]);
            } else {
                ok = needOps(op == Opcode::Jal ? 2 : 1);
                if (ok) {
                    std::size_t ti = 0;
                    if (op == Opcode::Jal) {
                        inst.rd = reg(ops[0]);
                        ti = 1;
                    }
                    if (auto v = resolve(line, ops[ti])) {
                        std::int64_t delta = (*v - std::int64_t(pc)) / 4;
                        inst.imm = std::int32_t(delta);
                    } else {
                        ok = false;
                    }
                }
            }
            break;
          }
          case isa::OpClass::Nthr: {
            ok = needOps(2);
            if (!ok)
                break;
            inst.rd = reg(ops[0]);
            if (auto v = resolve(line, ops[1])) {
                std::int64_t delta = (*v - std::int64_t(pc)) / 4;
                inst.imm = std::int32_t(delta);
            } else {
                ok = false;
            }
            break;
          }
          case isa::OpClass::Mlock:
          case isa::OpClass::Munlock:
            ok = needOps(1);
            if (ok)
                inst.rs1 = reg(ops[0]);
            break;
        }

        if (ok)
            emit(isa::encode(inst));
        else
            emit(isa::encode(isa::StaticInst{}));
    }

    return diags.empty();
}

Image
Assembler::assembleOrDie(const std::string &source, Addr base_addr)
{
    Assembler as(base_addr);
    if (!as.assemble(source)) {
        const auto &d = as.diagnostics().front();
        CAPSULE_FATAL("assembly failed at line ", d.line, ": ",
                      d.message);
    }
    return as.image();
}

} // namespace capsule::casm
