/**
 * @file
 * Two-pass text assembler for CapISA.
 *
 * Syntax (one statement per line, '#' or ';' starts a comment):
 *
 *   label:                 ; define a label at the current PC
 *   add  r1, r2, r3        ; three-register form
 *   addi r1, r2, 42        ; immediate form (rs1 folded: addi rd, rs1, imm)
 *   lw   r1, 8(r2)         ; load: rd, disp(base)
 *   sw   r1, 8(r2)         ; store: data, disp(base)
 *   beq  r1, r2, label     ; branch to label (PC-relative encoded)
 *   jmp  label             ; unconditional jump
 *   nthr r1, label         ; CAPSULE division probe; child starts at label
 *   kthr                   ; CAPSULE thread kill
 *   mlock r1 / munlock r1  ; CAPSULE lock on address in register
 *   halt
 *   .org  ADDR             ; set the location counter
 *   .word VALUE            ; emit a raw 32-bit data word
 *
 * Immediates accept decimal and 0x-hex. The assembler reports errors
 * with line numbers and returns a Program image (base address + words
 * + symbol table).
 */

#ifndef CAPSULE_CASM_ASSEMBLER_HH
#define CAPSULE_CASM_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/isa.hh"

namespace capsule::casm
{

/** Result of assembling a source string. */
struct Image
{
    Addr base = 0;                       ///< load address of words[0]
    std::vector<std::uint32_t> words;    ///< instruction/data words
    std::map<std::string, Addr> symbols; ///< label -> address

    /** Address of a label; fatal if undefined. */
    Addr symbol(const std::string &name) const;
    /** Size of the image in bytes. */
    std::uint64_t bytes() const { return words.size() * 4; }

    /**
     * Content digest of the loadable image: FNV-1a over the load
     * address and the encoded words (base/digest.hh rules). Symbols
     * are labels, not content — two sources that assemble to the same
     * words at the same base are the same program, so cache keys built
     * on this survive formatting/label refactors (pinned by
     * tests/test_farm.cc).
     */
    std::uint64_t digest() const;
};

/** One assembly diagnostic. */
struct Diagnostic
{
    int line = 0;
    std::string message;
};

/**
 * Two-pass assembler. assemble() either returns a complete image or
 * reports every diagnostic it found (tests rely on multiple errors
 * being collected in one run).
 */
class Assembler
{
  public:
    explicit Assembler(Addr base_addr = 0x1000) : base(base_addr) {}

    /** Assemble source text; returns true on success. */
    bool assemble(const std::string &source);

    const Image &image() const { return result; }
    const std::vector<Diagnostic> &diagnostics() const { return diags; }

    /** Convenience: assemble or die with the first diagnostic. */
    static Image assembleOrDie(const std::string &source,
                               Addr base_addr = 0x1000);

  private:
    struct Line
    {
        int number;
        std::string label;
        std::string mnemonic;
        std::vector<std::string> operands;
    };

    bool tokenize(const std::string &source, std::vector<Line> &lines);
    void error(int line, const std::string &msg);

    Addr base;
    Image result;
    std::vector<Diagnostic> diags;
};

} // namespace capsule::casm

#endif // CAPSULE_CASM_ASSEMBLER_HH
