/**
 * @file
 * Tokenizer for the CapC worker-syntax subset (C/C++ with the
 * `worker` and `coworker` extensions of Section 3.2). The lexer
 * preserves every character — comments and whitespace are tokens —
 * so the pre-processor can re-emit untouched code verbatim.
 */

#ifndef CAPSULE_TC_LEXER_HH
#define CAPSULE_TC_LEXER_HH

#include <string>
#include <vector>

namespace capsule::tc
{

/** One source token. */
struct Token
{
    enum class Kind
    {
        Ident,     ///< identifiers and keywords
        Number,
        String,    ///< "..." including quotes
        CharLit,   ///< '...'
        Punct,     ///< single punctuation character
        Comment,   ///< // ... or /* ... */
        Space,     ///< spaces and tabs
        Newline,   ///< one '\n'
    };

    Kind kind;
    std::string text;
    int line;

    bool is(Kind k, const std::string &t) const
    {
        return kind == k && text == t;
    }
    bool isIdent(const std::string &t) const
    {
        return is(Kind::Ident, t);
    }
    bool isPunct(char c) const
    {
        return kind == Kind::Punct && text.size() == 1 && text[0] == c;
    }
};

/** Tokenize CapC source; never fails (unknown bytes become Punct). */
std::vector<Token> lex(const std::string &source);

/** Re-emit a token stream verbatim. */
std::string emit(const std::vector<Token> &tokens);

/** Next index at or after `i` that is not whitespace or comment. */
std::size_t skipBlanks(const std::vector<Token> &toks, std::size_t i);

} // namespace capsule::tc

#endif // CAPSULE_TC_LEXER_HH
