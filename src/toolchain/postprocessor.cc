#include "toolchain/postprocessor.hh"

#include <sstream>
#include <vector>

namespace capsule::tc
{
namespace
{

/** Split into lines (without the trailing newline). */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** Tokenize one assembly line on whitespace and commas. */
std::vector<std::string>
fields(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (c == '#' || c == ';')
            break;
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Leading whitespace of a line (kept on rewritten lines). */
std::string
indentOf(const std::string &line)
{
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    return line.substr(0, i);
}

} // namespace

PostprocessResult
postprocess(const std::string &asm_text)
{
    PostprocessResult res;
    std::vector<std::string> lines = splitLines(asm_text);
    std::string out;

    for (std::size_t i = 0; i < lines.size(); ++i) {
        auto f0 = fields(lines[i]);
        bool isProbeCall = f0.size() == 3 && f0[0] == "jal" &&
                           f0[2] == "__capsule_probe";
        if (isProbeCall && i + 4 < lines.size()) {
            auto f1 = fields(lines[i + 1]);  // addi rT, r0, -1
            auto f2 = fields(lines[i + 2]);  // beq rV, rT, Lseq
            auto f3 = fields(lines[i + 3]);  // beq rV, r0, Lleft
            auto f4 = fields(lines[i + 4]);  // jmp Lright
            bool shape =
                f1.size() == 4 && f1[0] == "addi" && f1[2] == "r0" &&
                f1[3] == "-1" && f2.size() == 4 && f2[0] == "beq" &&
                f2[2] == f1[1] && f3.size() == 4 && f3[0] == "beq" &&
                f3[1] == f2[1] && f3[2] == "r0" && f4.size() == 2 &&
                f4[0] == "jmp";
            if (shape) {
                const std::string &rv = f2[1];
                const std::string &rt = f1[1];
                const std::string &lseq = f2[3];
                const std::string &lleft = f3[3];
                const std::string &lright = f4[1];
                std::string ind = indentOf(lines[i]);
                out += ind + "nthr " + rv + ", " + lright +
                       "    # capsule: hardware division\n";
                out += ind + "addi " + rt + ", r0, -1\n";
                out += ind + "beq " + rv + ", " + rt + ", " + lseq +
                       "    # division denied\n";
                out += ind + "jmp " + lleft +
                       "    # division granted: parent half\n";
                i += 4;
                ++res.callSitesRewritten;
                continue;
            }
        }
        out += lines[i];
        out += '\n';
    }

    res.output = out;
    return res;
}

} // namespace capsule::tc
