#include "toolchain/preprocessor.hh"

#include <set>

#include "base/logging.hh"

namespace capsule::tc
{
namespace
{

using Toks = std::vector<Token>;

/** A recognised worker definition inside the token stream. */
struct Definition
{
    WorkerInfo info;
    std::size_t headerBegin;  ///< index of the `worker` keyword
    std::size_t nameIndex;    ///< index of the function name
    std::size_t parenOpen;
    std::size_t parenClose;
    std::size_t braceOpen;
    std::size_t braceClose;   ///< index of the matching '}'
};

/** Find the matching closer for the opener at `open`. */
std::size_t
matchDelim(const Toks &toks, std::size_t open, char oc, char cc)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].isPunct(oc))
            ++depth;
        else if (toks[i].isPunct(cc)) {
            if (--depth == 0)
                return i;
        }
    }
    return toks.size();
}

/** Parse the formal parameters between parenOpen and parenClose. */
std::vector<WorkerParam>
parseParams(const Toks &toks, std::size_t open, std::size_t close)
{
    std::vector<WorkerParam> params;
    std::size_t begin = open + 1;
    int depth = 0;
    auto flush = [&](std::size_t end) {
        WorkerParam p;
        std::string lastIdent;
        for (std::size_t i = begin; i < end; ++i) {
            const Token &t = toks[i];
            if (t.isPunct('*') || t.isPunct('&'))
                p.byAddress = true;
            if (t.kind == Token::Kind::Ident)
                lastIdent = t.text;
        }
        if (lastIdent.empty())
            return;  // e.g. (void) or ()
        p.name = lastIdent;
        for (std::size_t i = begin; i < end; ++i) {
            if (toks[i].kind == Token::Kind::Ident &&
                toks[i].text == lastIdent &&
                skipBlanks(toks, i + 1) >= end)
                break;
            if (toks[i].kind != Token::Kind::Newline)
                p.type += toks[i].text;
        }
        params.push_back(std::move(p));
    };
    for (std::size_t i = open + 1; i < close; ++i) {
        if (toks[i].isPunct('(') || toks[i].isPunct('<'))
            ++depth;
        else if (toks[i].isPunct(')') || toks[i].isPunct('>'))
            --depth;
        else if (toks[i].isPunct(',') && depth == 0) {
            flush(i);
            begin = i + 1;
        }
    }
    if (close > begin)
        flush(close);
    return params;
}

/** Emit tokens [b, e) verbatim. */
std::string
slice(const Toks &toks, std::size_t b, std::size_t e)
{
    std::string out;
    for (std::size_t i = b; i < e && i < toks.size(); ++i)
        out += toks[i].text;
    return out;
}

/** The three generated version suffixes. */
enum class Version
{
    Seq,
    Left,
    Right,
};

const char *
suffix(Version v)
{
    switch (v) {
      case Version::Seq:
        return "__seq";
      case Version::Left:
        return "__left";
      case Version::Right:
        return "__right";
    }
    return "";
}

} // namespace

PreprocessResult
Preprocessor::process(const std::string &source)
{
    PreprocessResult res;
    Toks toks = lex(source);

    // ---- pass 1: find worker definitions at top level -------------
    std::vector<Definition> defs;
    std::set<std::string> workerNames;
    {
        int depth = 0;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].isPunct('{'))
                ++depth;
            else if (toks[i].isPunct('}'))
                --depth;
            if (depth != 0 || !toks[i].isIdent("worker"))
                continue;

            Definition d;
            d.headerBegin = i;
            // Scan forward: ... name ( params ) { body }
            std::size_t j = i + 1;
            std::size_t lastIdent = 0;
            while (j < toks.size() && !toks[j].isPunct('(')) {
                if (toks[j].kind == Token::Kind::Ident)
                    lastIdent = j;
                ++j;
            }
            if (j >= toks.size() || lastIdent == 0) {
                res.diagnostics.push_back(
                    "line " + std::to_string(toks[i].line) +
                    ": malformed worker definition");
                continue;
            }
            d.nameIndex = lastIdent;
            d.parenOpen = j;
            d.parenClose = matchDelim(toks, j, '(', ')');
            std::size_t k = skipBlanks(toks, d.parenClose + 1);
            if (k >= toks.size() || !toks[k].isPunct('{')) {
                res.diagnostics.push_back(
                    "line " + std::to_string(toks[i].line) +
                    ": worker '" + toks[lastIdent].text +
                    "' has no body");
                continue;
            }
            d.braceOpen = k;
            d.braceClose = matchDelim(toks, k, '{', '}');
            d.info.name = toks[lastIdent].text;
            d.info.line = toks[i].line;
            d.info.params =
                parseParams(toks, d.parenOpen, d.parenClose);
            workerNames.insert(d.info.name);
            defs.push_back(d);
        }
    }

    // ---- helpers for call rewriting --------------------------------
    /**
     * Rewrite the body tokens [b, e), replacing coworker statements
     * and worker calls; returns the rewritten text.
     */
    auto rewriteBody = [&](std::size_t b, std::size_t e, Version v) {
        std::string out;
        std::size_t i = b;
        while (i < e) {
            const Token &t = toks[i];
            bool isCoworker = t.isIdent("coworker");
            std::size_t callName = i;
            if (isCoworker)
                callName = skipBlanks(toks, i + 1);
            bool isWorkerCall =
                toks[callName].kind == Token::Kind::Ident &&
                workerNames.count(toks[callName].text);
            if (isCoworker && !isWorkerCall) {
                res.diagnostics.push_back(
                    "line " + std::to_string(t.line) +
                    ": coworker call to unknown worker '" +
                    toks[callName].text + "'");
            }
            std::size_t paren =
                isWorkerCall ? skipBlanks(toks, callName + 1)
                             : std::size_t(0);
            if (isWorkerCall && paren < e && toks[paren].isPunct('(')) {
                std::size_t close = matchDelim(toks, paren, '(', ')');
                std::size_t semi = skipBlanks(toks, close + 1);
                if (semi < e && toks[semi].isPunct(';')) {
                    const std::string &callee = toks[callName].text;
                    std::string args =
                        slice(toks, paren + 1, close);
                    if (v == Version::Seq) {
                        // The sequential version never probes.
                        out += callee + "__seq(" + args + ");";
                    } else {
                        out += "switch (__capsule_probe()) {";
                        out += " case -1: " + callee + "__seq(" +
                               args + "); break;";
                        out += " case 0: " + callee + "__left(" +
                               args + "); break;";
                        out += " case 1: " + callee + "__right(" +
                               args + "); break;";
                        out += " }";
                    }
                    ++res.coworkerCallsRewritten;
                    i = semi + 1;
                    continue;
                }
            }
            out += t.text;
            ++i;
        }
        return out;
    };

    /** Locate the first spawning statement inside a body. */
    auto firstSpawnIndex = [&](std::size_t b,
                               std::size_t e) -> std::size_t {
        for (std::size_t i = b; i < e; ++i) {
            if (toks[i].isIdent("coworker"))
                return i;
            if (toks[i].kind == Token::Kind::Ident &&
                workerNames.count(toks[i].text) &&
                i > b) {
                std::size_t paren = skipBlanks(toks, i + 1);
                if (paren < e && toks[paren].isPunct('('))
                    return i;
            }
        }
        return e;
    };

    // ---- pass 2: emit ----------------------------------------------
    std::string &out = res.output;
    std::size_t cursor = 0;
    for (const auto &d : defs) {
        // Copy everything before the definition, rewriting calls.
        out += rewriteBody(cursor, d.headerBegin, Version::Left);

        std::string header =
            slice(toks, d.headerBegin + 1, d.nameIndex);
        std::string paramText =
            slice(toks, d.parenOpen, d.parenClose + 1);

        out += "/* CAPSULE: expanded '" + d.info.name +
               "' into seq/left/right versions */\n";
        for (Version v :
             {Version::Seq, Version::Left, Version::Right}) {
            out += header + d.info.name + suffix(v) + paramText;
            out += "{";
            std::string prologue;
            std::string release;
            if (insertLocks) {
                for (const auto &p : d.info.params) {
                    if (!p.byAddress)
                        continue;
                    prologue += " __mlock(" + p.name + ");";
                    release += " __munlock(" + p.name + ");";
                    res.locksInserted += 2;
                }
            }
            out += prologue;
            std::size_t spawn =
                firstSpawnIndex(d.braceOpen + 1, d.braceClose);
            if (spawn < d.braceClose) {
                out += rewriteBody(d.braceOpen + 1, spawn, v);
                out += release + " ";
                out += rewriteBody(spawn, d.braceClose, v);
            } else {
                out += rewriteBody(d.braceOpen + 1, d.braceClose, v);
                out += release;
            }
            out += "}\n";
        }
        res.workers.push_back(d.info);
        cursor = d.braceClose + 1;
    }
    out += rewriteBody(cursor, toks.size(), Version::Left);

    res.ok = res.diagnostics.empty();
    return res;
}

} // namespace capsule::tc
