#include "toolchain/lexer.hh"

#include <cctype>

namespace capsule::tc
{
namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

std::vector<Token>
lex(const std::string &src)
{
    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1;
    auto push = [&](Token::Kind k, std::string text) {
        out.push_back(Token{k, std::move(text), line});
    };

    while (i < src.size()) {
        char c = src[i];
        if (c == '\n') {
            push(Token::Kind::Newline, "\n");
            ++line;
            ++i;
        } else if (c == ' ' || c == '\t' || c == '\r') {
            std::size_t j = i;
            while (j < src.size() &&
                   (src[j] == ' ' || src[j] == '\t' || src[j] == '\r'))
                ++j;
            push(Token::Kind::Space, src.substr(i, j - i));
            i = j;
        } else if (c == '/' && i + 1 < src.size() &&
                   src[i + 1] == '/') {
            std::size_t j = src.find('\n', i);
            if (j == std::string::npos)
                j = src.size();
            push(Token::Kind::Comment, src.substr(i, j - i));
            i = j;
        } else if (c == '/' && i + 1 < src.size() &&
                   src[i + 1] == '*') {
            std::size_t j = src.find("*/", i + 2);
            j = j == std::string::npos ? src.size() : j + 2;
            std::string text = src.substr(i, j - i);
            for (char ch : text)
                line += ch == '\n';
            out.push_back(Token{Token::Kind::Comment, text,
                                out.empty() ? 1 : out.back().line});
            i = j;
        } else if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != quote) {
                if (src[j] == '\\')
                    ++j;
                ++j;
            }
            j = j < src.size() ? j + 1 : j;
            push(quote == '"' ? Token::Kind::String
                              : Token::Kind::CharLit,
                 src.substr(i, j - i));
            i = j;
        } else if (identStart(c)) {
            std::size_t j = i + 1;
            while (j < src.size() && identCont(src[j]))
                ++j;
            push(Token::Kind::Ident, src.substr(i, j - i));
            i = j;
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i + 1;
            while (j < src.size() &&
                   (identCont(src[j]) || src[j] == '.'))
                ++j;
            push(Token::Kind::Number, src.substr(i, j - i));
            i = j;
        } else {
            push(Token::Kind::Punct, std::string(1, c));
            ++i;
        }
    }
    return out;
}

std::string
emit(const std::vector<Token> &tokens)
{
    std::string out;
    for (const auto &t : tokens)
        out += t.text;
    return out;
}

std::size_t
skipBlanks(const std::vector<Token> &toks, std::size_t i)
{
    while (i < toks.size() &&
           (toks[i].kind == Token::Kind::Space ||
            toks[i].kind == Token::Kind::Newline ||
            toks[i].kind == Token::Kind::Comment))
        ++i;
    return i;
}

} // namespace capsule::tc
