/**
 * @file
 * The CAPSULE source-to-source pre-processor of Section 3.2: it
 * turns the C/C++ worker-syntax extensions into standard C/C++
 * (Figure 2(a) -> 2(b)).
 *
 * Transformations:
 *  1. Every `worker` function definition `worker T f(params) {...}`
 *     is expanded into three versions — `f__seq` (the sequential
 *     fallback), `f__left` and `f__right` (the two halves of a
 *     division) — plus a dispatch macro under the original name.
 *  2. Every `coworker f(args);` statement (and every plain call to a
 *     function known to be a worker, per the paper) becomes the
 *     conditional-division switch:
 *
 *         switch (__capsule_probe()) {
 *           case -1: f__seq(args); break;   // division denied
 *           case 0:  f__left(args); break;  // parent half
 *           case 1:  f__right(args); break; // child half
 *         }
 *
 *     Inside `f__seq` the call lowers to a direct `f__seq(args);`
 *     (the sequential version never probes).
 *  3. Lock insertion: every worker parameter passed by address gets
 *     `__mlock(p);` at body entry and `__munlock(p);` before the
 *     first spawning section (or at body exit when none) — the
 *     default placement the paper describes, which users may adjust.
 */

#ifndef CAPSULE_TC_PREPROCESSOR_HH
#define CAPSULE_TC_PREPROCESSOR_HH

#include <string>
#include <vector>

#include "toolchain/lexer.hh"

namespace capsule::tc
{

/** One formal parameter of a worker. */
struct WorkerParam
{
    std::string type;       ///< textual type spelling
    std::string name;
    bool byAddress = false; ///< pointer or reference parameter
};

/** Metadata of one recognised worker definition. */
struct WorkerInfo
{
    std::string name;
    std::vector<WorkerParam> params;
    int line = 0;
};

/** Result of a pre-processing run. */
struct PreprocessResult
{
    bool ok = false;
    std::string output;
    std::vector<WorkerInfo> workers;
    std::vector<std::string> diagnostics;
    int coworkerCallsRewritten = 0;
    int locksInserted = 0;
};

/** The Figure-2(a) -> 2(b) source transformation. */
class Preprocessor
{
  public:
    /** When false, skip the automatic lock insertion pass. */
    explicit Preprocessor(bool insert_locks = true)
        : insertLocks(insert_locks)
    {}

    PreprocessResult process(const std::string &source);

  private:
    bool insertLocks;
};

} // namespace capsule::tc

#endif // CAPSULE_TC_PREPROCESSOR_HH
