/**
 * @file
 * The CAPSULE assembly post-processor of Section 3.2: it replaces
 * the compiled form of the probe switch (a run-time call followed by
 * the three-way dispatch) with the nthr instruction the architecture
 * understands (Figure 2(b) -> 2(c)).
 *
 * Recognised input pattern (CapISA assembly, one call site):
 *
 *     jal  rL, __capsule_probe     ; software probe call
 *     addi rT, r0, -1
 *     beq  rV, rT, Lseq            ; case -1: sequential version
 *     beq  rV, r0, Lleft           ; case 0:  left (parent) version
 *     jmp  Lright                  ; case 1:  right (child) version
 *
 * Emitted replacement:
 *
 *     nthr rV, Lright              ; hardware conditional division
 *     addi rT, r0, -1
 *     beq  rV, rT, Lseq            ; division denied
 *     jmp  Lleft                   ; division granted: parent half
 *
 * The child half starts at Lright with rV = 1 in its copied register
 * file, exactly the three-way contract of the switch.
 */

#ifndef CAPSULE_TC_POSTPROCESSOR_HH
#define CAPSULE_TC_POSTPROCESSOR_HH

#include <string>

namespace capsule::tc
{

/** Result of a post-processing run. */
struct PostprocessResult
{
    std::string output;
    int callSitesRewritten = 0;
};

/** Rewrite every probe call site in `asm_text`. */
PostprocessResult postprocess(const std::string &asm_text);

} // namespace capsule::tc

#endif // CAPSULE_TC_POSTPROCESSOR_HH
